// Benchmarks regenerating every table and figure of RECIPE's evaluation
// (§7), one benchmark family per artifact, plus ablations for the design
// choices called out in DESIGN.md. Throughput figures report Mops/s via
// the standard ns/op; counter figures attach clwb/insert, mfence/insert
// and LLC-miss/op metrics with b.ReportMetric.
//
// Scale: benchmarks default to small populations so `go test -bench=.`
// terminates quickly; cmd/ycsbbench and cmd/counters run the full-size
// experiments.
package recipe_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	recipe "repro"
	"repro/internal/bwtree"
	"repro/internal/cachesim"
	"repro/internal/clht"
	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
)

const (
	benchLoadN   = 20_000
	benchThreads = 8
)

// runWorkloadBench executes one (index, workload, keykind) cell: the
// index is loaded once, then b.N operations of the workload mix run
// across benchThreads goroutines.
func runWorkloadBench(b *testing.B, index string, w ycsb.Workload, kind keys.Kind, delays bool) {
	b.Helper()
	opts := pmem.Options{}
	if delays {
		opts.DelayClwb, opts.DelayFence = 40, 20
	}
	heap := pmem.New(opts)
	idx, err := recipe.NewOrdered(index, heap, kind)
	if err != nil {
		b.Fatal(err)
	}
	gen := keys.NewGenerator(kind)
	res, err := recipe.RunOrderedWorkload(index, idx, gen, heap, w, benchLoadN, b.N, benchThreads, 42)
	if err != nil {
		if index == "FAST & FAIR" && strings.Contains(err.Error(), "read id") {
			// FAST & FAIR can lose a committed key under concurrent insert
			// storms — the §3 data-loss class the paper reports for it
			// (see internal/fastfair.TestKnownIssueConcurrentLoadLoss).
			b.Skipf("FAST & FAIR known data-loss class under concurrency: %v", err)
		}
		b.Fatal(err)
	}
	b.ReportMetric(res.MopsPerSec(), "Mops/s")
}

func runHashBench(b *testing.B, index string, w ycsb.Workload, delays bool) {
	b.Helper()
	opts := pmem.Options{}
	if delays {
		opts.DelayClwb, opts.DelayFence = 40, 20
	}
	heap := pmem.New(opts)
	idx, err := recipe.NewHash(index, heap)
	if err != nil {
		b.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	res, err := recipe.RunHashWorkload(index, idx, gen, heap, w, benchLoadN, b.N, benchThreads, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MopsPerSec(), "Mops/s")
}

// BenchmarkFig4a: ordered indexes, integer keys, multi-threaded YCSB.
func BenchmarkFig4a(b *testing.B) {
	for _, name := range recipe.OrderedNames() {
		for _, w := range recipe.Workloads() {
			b.Run(fmt.Sprintf("%s/%s", name, w.Name), func(b *testing.B) {
				runWorkloadBench(b, name, w, keys.RandInt, true)
			})
		}
	}
}

// BenchmarkFig4b: ordered indexes, 24-byte YCSB string keys.
func BenchmarkFig4b(b *testing.B) {
	for _, name := range recipe.OrderedNames() {
		for _, w := range recipe.Workloads() {
			b.Run(fmt.Sprintf("%s/%s", name, w.Name), func(b *testing.B) {
				runWorkloadBench(b, name, w, keys.YCSBString, true)
			})
		}
	}
}

// BenchmarkFig5: hash indexes, integer keys (workloads without scans).
func BenchmarkFig5(b *testing.B) {
	for _, name := range recipe.HashNames() {
		for _, w := range []ycsb.Workload{ycsb.LoadA, ycsb.A, ycsb.B, ycsb.C} {
			b.Run(fmt.Sprintf("%s/%s", name, w.Name), func(b *testing.B) {
				runHashBench(b, name, w, true)
			})
		}
	}
}

// counterBench runs one Load A pass in stats mode and reports clwb and
// mfence per insert plus simulated LLC misses per op.
func counterBench(b *testing.B, index string, kind keys.Kind, hash bool) {
	b.Helper()
	heap := pmem.New(pmem.Options{LLC: cachesim.New(cachesim.DefaultConfig())})
	gen := keys.NewGenerator(kind)
	var res recipe.Result
	var err error
	if hash {
		var idx recipe.HashIndex
		idx, err = recipe.NewHash(index, heap)
		if err == nil {
			res, err = recipe.RunHashWorkload(index, idx, gen, heap, ycsb.LoadA, benchLoadN/2, b.N, 4, 42)
		}
	} else {
		var idx recipe.OrderedIndex
		idx, err = recipe.NewOrdered(index, heap, kind)
		if err == nil {
			res, err = recipe.RunOrderedWorkload(index, idx, gen, heap, ycsb.LoadA, benchLoadN/2, b.N, 4, 42)
		}
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.ClwbPerInsert(), "clwb/insert")
	b.ReportMetric(res.FencePerInsert(), "mfence/insert")
	b.ReportMetric(res.LLCMissPerOp(), "LLCmiss/op")
}

// BenchmarkFig4c: per-insert persistence instructions and LLC misses,
// ordered indexes, integer keys.
func BenchmarkFig4c(b *testing.B) {
	for _, name := range recipe.OrderedNames() {
		b.Run(name, func(b *testing.B) { counterBench(b, name, keys.RandInt, false) })
	}
}

// BenchmarkFig4d: the same with string keys.
func BenchmarkFig4d(b *testing.B) {
	for _, name := range recipe.OrderedNames() {
		b.Run(name, func(b *testing.B) { counterBench(b, name, keys.YCSBString, false) })
	}
}

// BenchmarkTable4: per-insert persistence instructions and LLC misses,
// hash indexes.
func BenchmarkTable4(b *testing.B) {
	for _, name := range recipe.HashNames() {
		b.Run(name, func(b *testing.B) { counterBench(b, name, keys.RandInt, true) })
	}
}

// BenchmarkHeapScaling measures the instrumentation substrate itself
// rather than any index: Alloc + Persist + Fence throughput at 1..16
// goroutines, striped (the default) versus the pre-refactor
// shared-atomics reference heap (pmem.Options{SharedAtomics: true}).
// On multi-core machines the shared variant flatlines as every counter
// add ping-pongs one cache line between cores, while the striped variant
// scales with goroutines; this is the harness-overhead ceiling that
// would otherwise cap every index in Figs 4 and 5.
func BenchmarkHeapScaling(b *testing.B) {
	for _, impl := range []struct {
		name   string
		shared bool
	}{{"striped", false}, {"shared", true}} {
		for _, g := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", impl.name, g), func(b *testing.B) {
				heap := pmem.New(pmem.Options{SharedAtomics: impl.shared})
				per := b.N / g
				b.ResetTimer()
				var wg sync.WaitGroup
				for t := 0; t < g; t++ {
					n := per
					if t == g-1 {
						n = b.N - per*(g-1)
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							o := heap.Alloc(64)
							heap.Persist(o, 0, 64)
							heap.Fence()
						}
					}(n)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
			})
		}
	}
}

// BenchmarkShardScaling sweeps the sharded front-end: insert throughput
// into a sharded P-ART at H ∈ {1,2,4,8} shards × {1,2,4,8} goroutines.
// With one heap, all goroutines contend on one index's write locks and
// one (striped) instrumentation substrate; with H heaps the partitioner
// spreads them over H independent indexes, the multi-socket-style
// scaling axis. As with BenchmarkHeapScaling, separation needs
// GOMAXPROCS > 1 — on a single-CPU container all configurations measure
// the same serial work plus routing overhead.
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("shards=%d/goroutines=%d", shards, g), func(b *testing.B) {
				m, err := recipe.NewShardedOrdered("P-ART", keys.RandInt, recipe.ShardOptions{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				gen := keys.NewGenerator(keys.RandInt)
				per := b.N / g
				b.ResetTimer()
				var wg sync.WaitGroup
				for t := 0; t < g; t++ {
					n := per
					if t == g-1 {
						n = b.N - per*(g-1)
					}
					base := uint64(t) << 40 // disjoint id ranges per goroutine
					wg.Add(1)
					go func(base uint64, n int) {
						defer wg.Done()
						buf := make([]byte, 0, 16)
						for i := 0; i < n; i++ {
							buf = gen.AppendKey(buf[:0], base+uint64(i))
							if err := m.Insert(buf, base+uint64(i)); err != nil {
								b.Error(err)
								return
							}
						}
					}(base, n)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
			})
		}
	}
}

// BenchmarkScanStreaming measures the streaming k-way merge scan
// engine: range scans through the sharded front-end for both
// partitioners at H ∈ {1, 8} shards, bounded (100-entry) and unbounded
// lengths, over datasets that differ 10× in size. The headline metric
// is B/op (ReportAllocs): the streaming merge buffers at most one batch
// per shard, so scan allocation is O(shards × batch) and stays ~flat as
// the dataset grows, where the old collect-then-sort merge buffered
// every remaining entry — O(dataset) — for unbounded scans. FAST & FAIR
// is the scanned index: its leaf sibling links make each batch resume
// an O(log n) seek (§7.1), so the numbers isolate the merge engine
// rather than trie re-walk costs.
func BenchmarkScanStreaming(b *testing.B) {
	for _, part := range []recipe.Partitioner{recipe.HashPartition{}, recipe.RangePartition{}} {
		for _, shards := range []int{1, 8} {
			for _, loadN := range []int{20_000, 200_000} {
				for _, scanLen := range []int{100, 0} {
					lenName := fmt.Sprint(scanLen)
					if scanLen == 0 {
						lenName = "full"
					}
					name := fmt.Sprintf("part=%s/shards=%d/load=%d/len=%s", part.Name(), shards, loadN, lenName)
					b.Run(name, func(b *testing.B) {
						m, err := recipe.NewShardedOrdered("FAST & FAIR", keys.RandInt,
							recipe.ShardOptions{Shards: shards, Partitioner: part})
						if err != nil {
							b.Fatal(err)
						}
						gen := keys.NewGenerator(keys.RandInt)
						buf := make([]byte, 0, 16)
						for id := uint64(0); id < uint64(loadN); id++ {
							buf = gen.AppendKey(buf[:0], id)
							if err := m.Insert(buf, id); err != nil {
								b.Fatal(err)
							}
						}
						b.ReportAllocs()
						b.ResetTimer()
						visited := 0
						for i := 0; i < b.N; i++ {
							var start []byte
							if scanLen > 0 {
								// Roam the start key so bounded scans touch
								// the whole key space.
								buf = gen.AppendKey(buf[:0], uint64(i)%uint64(loadN))
								start = buf
							}
							visited += m.Scan(start, scanLen, func([]byte, uint64) bool { return true })
						}
						b.StopTimer()
						b.ReportMetric(float64(visited)/float64(b.N), "entries/op")
					})
				}
			}
		}
	}
}

// BenchmarkWorkloadSkew sweeps the request-distribution axis the paper
// left closed: workload F (50/50 read/RMW) under uniform vs zipfian
// θ ∈ {0.5, 0.99} and workload D (95/5 read-latest/insert), across
// representative ordered indexes and shard counts. Under skew a
// handful of ranks absorb most read-like traffic: with H shards those
// ranks live on few partitions, so the per-shard striped counters and
// write locks that uniform traffic spreads evenly concentrate instead
// — the shard-imbalance effect DESIGN.md's "Request distributions and
// update semantics" section discusses. As with the other scaling
// families, the contention itself needs GOMAXPROCS > 1 to manifest;
// at 1 CPU the cells pin the code paths (and feed the bench-smoke CI
// lane) rather than the separation.
func BenchmarkWorkloadSkew(b *testing.B) {
	type cell struct {
		label string
		w     ycsb.Workload
		dist  recipe.Distribution
	}
	cells := []cell{
		{"F/uniform", ycsb.F, recipe.Uniform{}},
		{"F/zipf-0.5", ycsb.F, recipe.Zipfian{Theta: 0.5}},
		{"F/zipf-0.99", ycsb.F, recipe.Zipfian{Theta: 0.99}},
		{"D/latest-0.99", ycsb.D, recipe.Latest{Theta: 0.99}},
	}
	for _, index := range []string{"P-ART", "FAST & FAIR"} {
		for _, c := range cells {
			for _, shards := range []int{1, 8} {
				b.Run(fmt.Sprintf("%s/%s/shards=%d", index, c.label, shards), func(b *testing.B) {
					m, err := recipe.NewShardedOrdered(index, keys.RandInt,
						recipe.ShardOptions{Shards: shards})
					if err != nil {
						b.Fatal(err)
					}
					defer m.Release()
					gen := keys.NewGenerator(keys.RandInt)
					w := c.w
					w.Dist = c.dist
					res, err := recipe.RunOrderedWorkload(index, m, gen, m, w,
						benchLoadN, b.N, benchThreads, 42)
					if err != nil {
						if index == "FAST & FAIR" && strings.Contains(err.Error(), "read id") {
							b.Skipf("FAST & FAIR known data-loss class under concurrency: %v", err)
						}
						b.Fatal(err)
					}
					b.ReportMetric(res.MopsPerSec(), "Mops/s")
				})
			}
		}
	}
}

// BenchmarkBatchedWrites sweeps the group-commit batch size on the
// write-heavy workloads A (50/50 insert/read) and F (50/50 read/RMW):
// per-thread combiners queue up to `batch` writes and commit them as
// one fence-coalesced group per shard, so the headline metric is
// fence/op falling as batch grows while batch=1 matches the plain
// per-op write path. Crash consistency at every batch size is proven
// by the batched lossy and durability-site campaigns
// (internal/harness TestBatchedLossyMatrix, TestBatchedDurabilitySites).
func BenchmarkBatchedWrites(b *testing.B) {
	for _, w := range []ycsb.Workload{ycsb.A, ycsb.F} {
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("P-ART/%s/batch=%d", w.Name, batch), func(b *testing.B) {
				m, err := recipe.NewShardedOrdered("P-ART", keys.RandInt,
					recipe.ShardOptions{Heap: pmem.Options{DelayClwb: 40, DelayFence: 20}})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Release()
				gen := keys.NewGenerator(keys.RandInt)
				res, err := recipe.RunOrderedWorkloadBatched("P-ART", m, gen, w,
					benchLoadN, b.N, benchThreads, batch, 42)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MopsPerSec(), "Mops/s")
				if res.Ops > 0 {
					b.ReportMetric(float64(res.Stats.Fence)/float64(res.Ops), "fence/op")
				}
			})
		}
	}
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("P-CLHT/A/batch=%d", batch), func(b *testing.B) {
			m, err := recipe.NewShardedHash("P-CLHT",
				recipe.ShardOptions{Heap: pmem.Options{DelayClwb: 40, DelayFence: 20}})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Release()
			gen := keys.NewGenerator(keys.RandInt)
			res, err := recipe.RunHashWorkloadBatched("P-CLHT", m, gen, ycsb.A,
				benchLoadN, b.N, benchThreads, batch, 42)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerSec(), "Mops/s")
			if res.Ops > 0 {
				b.ReportMetric(float64(res.Stats.Fence)/float64(res.Ops), "fence/op")
			}
		})
	}
}

// BenchmarkAsyncPipeline compares the synchronous group-commit write
// path against the async commit pipeline on the write-heavy workloads
// A (50/50 insert/read) and F (50/50 read/RMW), on one ordered and one
// hash index, across per-shard queue depths. The sync baseline batches
// writes with the same group size the async committer drains
// (MaxBatch), so the comparison isolates the pipeline itself: enqueue
// + ack-after-fence futures versus combine-and-wait. Alongside Mops/s
// and fence/op the async cells report the mean enqueue-to-ack latency
// (ack-ns) — the price of decoupling the writer from the fence. Crash
// consistency of the async path is proven by the async lossy and
// durability-site campaigns (internal/harness TestAsyncLossyMatrix,
// TestAsyncDurabilitySites).
func BenchmarkAsyncPipeline(b *testing.B) {
	const maxBatch = 16
	heapOpts := pmem.Options{DelayClwb: 40, DelayFence: 20}
	report := func(b *testing.B, res recipe.Result) {
		b.ReportMetric(res.MopsPerSec(), "Mops/s")
		if res.Ops > 0 {
			b.ReportMetric(float64(res.Stats.Fence)/float64(res.Ops), "fence/op")
		}
		if res.AckOps > 0 {
			b.ReportMetric(float64(res.MeanAckLatency().Nanoseconds()), "ack-ns")
		}
	}
	for _, w := range []ycsb.Workload{ycsb.A, ycsb.F} {
		b.Run(fmt.Sprintf("P-ART/%s/sync/batch=%d", w.Name, maxBatch), func(b *testing.B) {
			m, err := recipe.NewShardedOrdered("P-ART", keys.RandInt, recipe.ShardOptions{Heap: heapOpts})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Release()
			gen := keys.NewGenerator(keys.RandInt)
			res, err := recipe.RunOrderedWorkloadBatched("P-ART", m, gen, w,
				benchLoadN, b.N, benchThreads, maxBatch, 42)
			if err != nil {
				b.Fatal(err)
			}
			report(b, res)
		})
		for _, queue := range []int{64, 1024} {
			b.Run(fmt.Sprintf("P-ART/%s/async/queue=%d", w.Name, queue), func(b *testing.B) {
				m, err := recipe.NewShardedOrdered("P-ART", keys.RandInt, recipe.ShardOptions{Heap: heapOpts})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Release()
				gen := keys.NewGenerator(keys.RandInt)
				res, err := recipe.RunOrderedWorkloadAsync("P-ART", m, gen, w,
					benchLoadN, b.N, benchThreads,
					recipe.CommitOptions{Queue: queue, MaxBatch: maxBatch}, 42)
				if err != nil {
					b.Fatal(err)
				}
				report(b, res)
			})
		}
	}
	for _, w := range []ycsb.Workload{ycsb.A, ycsb.F} {
		b.Run(fmt.Sprintf("P-CLHT/%s/sync/batch=%d", w.Name, maxBatch), func(b *testing.B) {
			m, err := recipe.NewShardedHash("P-CLHT", recipe.ShardOptions{Heap: heapOpts})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Release()
			gen := keys.NewGenerator(keys.RandInt)
			res, err := recipe.RunHashWorkloadBatched("P-CLHT", m, gen, w,
				benchLoadN, b.N, benchThreads, maxBatch, 42)
			if err != nil {
				b.Fatal(err)
			}
			report(b, res)
		})
		for _, queue := range []int{64, 1024} {
			b.Run(fmt.Sprintf("P-CLHT/%s/async/queue=%d", w.Name, queue), func(b *testing.B) {
				m, err := recipe.NewShardedHash("P-CLHT", recipe.ShardOptions{Heap: heapOpts})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Release()
				gen := keys.NewGenerator(keys.RandInt)
				res, err := recipe.RunHashWorkloadAsync("P-CLHT", m, gen, w,
					benchLoadN, b.N, benchThreads,
					recipe.CommitOptions{Queue: queue, MaxBatch: maxBatch}, 42)
				if err != nil {
					b.Fatal(err)
				}
				report(b, res)
			})
		}
	}
}

// BenchmarkSec73_WOART: P-ART vs globally locked WOART (§7.3).
func BenchmarkSec73_WOART(b *testing.B) {
	for _, name := range []string{"P-ART", "WOART"} {
		for _, w := range []ycsb.Workload{ycsb.LoadA, ycsb.C} {
			b.Run(fmt.Sprintf("%s/%s", name, w.Name), func(b *testing.B) {
				runWorkloadBench(b, name, w, keys.RandInt, true)
			})
		}
	}
}

// BenchmarkAblation_FlushBatching compares the per-store flush+fence
// pattern against batched flushing before a single commit fence — the
// Condition #1 reordering optimisation (§4.3, §8).
func BenchmarkAblation_FlushBatching(b *testing.B) {
	for _, mode := range []string{"per-store", "batched"} {
		b.Run(mode, func(b *testing.B) {
			heap := pmem.New(pmem.Options{DelayClwb: 40, DelayFence: 20})
			obj := heap.Alloc(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "per-store" {
					for off := uintptr(0); off < 256; off += 64 {
						heap.PersistFence(obj, off, 64)
					}
				} else {
					heap.Persist(obj, 0, 256)
					heap.Fence()
				}
			}
		})
	}
}

// BenchmarkAblation_BwTreeLoadFlush toggles the §6.3 decision to flush
// loads on the SMO help path.
func BenchmarkAblation_BwTreeLoadFlush(b *testing.B) {
	for _, flush := range []bool{true, false} {
		b.Run(fmt.Sprintf("flushSMOLoads=%v", flush), func(b *testing.B) {
			heap := pmem.New(pmem.Options{DelayClwb: 40, DelayFence: 20})
			idx := bwtree.New(heap)
			idx.FlushSMOLoads = flush
			gen := keys.NewGenerator(keys.RandInt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Insert(gen.Key(uint64(i)), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_BwTreeDeltaChain sweeps the consolidation threshold.
func BenchmarkAblation_BwTreeDeltaChain(b *testing.B) {
	for _, thr := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			heap := pmem.NewFast()
			idx := bwtree.New(heap)
			idx.ChainThreshold = thr
			gen := keys.NewGenerator(keys.RandInt)
			for i := uint64(0); i < 50_000; i++ {
				if err := idx.Insert(gen.Key(i), i); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := idx.Lookup(gen.Key(uint64(i) % 50_000)); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkAblation_CLHTRehash isolates the globally locked rehash the
// paper blames for P-CLHT's Load A deficit (§7.2): inserts into a
// pre-sized table never rehash; inserts into a tiny table rehash
// repeatedly.
func BenchmarkAblation_CLHTRehash(b *testing.B) {
	for _, mode := range []string{"presized", "growing"} {
		b.Run(mode, func(b *testing.B) {
			heap := pmem.New(pmem.Options{DelayClwb: 40, DelayFence: 20})
			n := 4
			if mode == "presized" {
				n = 1 << 20
			}
			idx := clht.NewWithBuckets(heap, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Insert(uint64(i)+1, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ARTCrashRepair measures the cost of the Condition #3
// write-path repair: inserts into a tree whose last split was crash-torn
// (the first write pays the try-lock detection plus prefix fix) versus a
// clean tree.
func BenchmarkAblation_ARTCrashRepair(b *testing.B) {
	for _, mode := range []string{"clean", "torn"} {
		b.Run(mode, func(b *testing.B) {
			gen := keys.NewGenerator(keys.YCSBString)
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				heap := pmem.NewFast()
				idx, err := recipe.NewOrdered("P-ART", heap, keys.YCSBString)
				if err != nil {
					b.Fatal(err)
				}
				for j := uint64(0); j < 64; j++ {
					if err := idx.Insert(gen.Key(j), j); err != nil {
						b.Fatal(err)
					}
				}
				if mode == "torn" {
					heap.SetInjector(crash.NewAtSite("art.split.installed", 1))
					for j := uint64(64); j < 4096; j++ {
						if err := idx.Insert(gen.Key(j), j); err != nil {
							break // simulated crash fired
						}
					}
					heap.SetInjector(nil)
					if err := idx.Recover(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if err := idx.Insert(gen.Key(1_000_000+uint64(i)), 1); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
			}
		})
	}
}

// BenchmarkReshardSkew is the resharding headline: P-ART behind the
// sharded front-end, H=8, zipfian θ=0.99 lookups — the regime where a
// static hash partition leaves one shard absorbing several times its
// fair share of traffic. Both cells warm the slot-load counters with
// the same skewed prelude; the resharded cell then runs the
// load-aware rebalancer (split/migrate hot slots under the live
// routing table) before the measured phase. Each cell reports the
// measured epoch's max/mean per-shard op share — the static cell
// shows the skew, the resharded cell shows what the slot moves
// recover. The ≥2× excess-imbalance reduction itself is asserted by
// shard.TestRebalanceImprovesSkew; this benchmark prices it.
func BenchmarkReshardSkew(b *testing.B) {
	const (
		loadN = 4_096
		h     = 8
		warmN = 120_000
	)
	run := func(b *testing.B, reshard bool) {
		m, err := recipe.NewShardedOrdered("P-ART", keys.RandInt, recipe.ShardOptions{Shards: h})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Release()
		if err := m.EnableResharding(); err != nil {
			b.Fatal(err)
		}
		gen := keys.NewGenerator(keys.RandInt)
		for id := uint64(0); id < loadN; id++ {
			if err := m.Insert(gen.Key(id), id); err != nil {
				b.Fatal(err)
			}
		}
		sampler := recipe.Zipfian{Theta: 0.99}.NewSampler(loadN, rand.New(rand.NewSource(42)))
		for i := 0; i < warmN; i++ {
			m.Lookup(gen.Key(sampler.Next()))
		}
		if reshard {
			rep, err := m.Rebalance(recipe.RebalanceOptions{Tolerance: 1.05})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.Before, "imbalance-warm")
			b.ReportMetric(float64(len(rep.Moves)), "moves")
		}
		m.LoadReport() // close the warm epoch; measure only b.N ops
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Lookup(gen.Key(sampler.Next()))
		}
		b.StopTimer()
		b.ReportMetric(m.LoadReport().Imbalance(), "max/mean-opshare")
	}
	b.Run("P-ART/zipf-0.99/shards=8/static", func(b *testing.B) { run(b, false) })
	b.Run("P-ART/zipf-0.99/shards=8/resharded", func(b *testing.B) { run(b, true) })
}
