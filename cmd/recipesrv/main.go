// Command recipesrv serves a RECIPE-converted ordered index over TCP
// with the internal/server wire protocol: GET/SET/DEL/SCAN/UPDATE plus
// INFO/STATS, per-connection pipelining, and a configurable write path
// (sync, batched group commit, or the async ack-after-fence pipeline).
//
// Usage:
//
//	go run ./cmd/recipesrv -addr :6399 -index P-ART -shards 8 -mode batched
//	go run ./cmd/recipesrv -mode async -queue 4096 -flushus 200
//
// SIGTERM/SIGINT triggers a graceful drain: no new connections, every
// write accepted before the drain began is fenced and acknowledged,
// then the process exits 0. -recover runs per-shard crash recovery
// before serving; shards whose recovery fails stay quarantined and
// answer UNAVAIL while the rest serve.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/commit"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/shard"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:6399", "TCP listen address")
		index     = flag.String("index", "P-ART", "ordered index to serve (see -list)")
		list      = flag.Bool("list", false, "list available indexes and exit")
		shards    = flag.Int("shards", 4, "shards in the front-end")
		partition = flag.String("partition", "hash", `key partitioner: "hash" or "range"`)
		mode      = flag.String("mode", "sync", `write path: "sync", "batched" or "async"`)
		batch     = flag.Int("batch", server.DefaultBatch, "batched mode: max staged writes per connection before a forced group commit")
		queue     = flag.Int("queue", 0, "async mode: per-shard committer queue depth (0 = default)")
		maxBatch  = flag.Int("maxbatch", 0, "async mode: max ops per group commit (0 = default)")
		flushUS   = flag.Int("flushus", 0, "async mode: staleness bound in microseconds (0 = commit immediately)")
		policy    = flag.String("policy", "reject", `async mode backpressure: "block", "reject" or "deadline"`)
		scanBatch = flag.Int("scanbatch", 0, "per-shard scan prefetch batch (0 = default)")
		doRecover = flag.Bool("recover", false, "run per-shard crash recovery before serving")
	)
	flag.Parse()
	if *list {
		for _, n := range core.OrderedNames {
			fmt.Println(n)
		}
		return
	}

	wm, err := server.ParseWriteMode(*mode)
	fatalIf(err)
	part, ok := shard.ByName(*partition)
	if !ok {
		fatalf("unknown partitioner %q (want hash or range)", *partition)
	}
	var pol commit.Policy
	switch *policy {
	case "block":
		pol = commit.Block
	case "reject":
		pol = commit.Reject
	case "deadline":
		pol = commit.Deadline
	default:
		fatalf("unknown policy %q (want block, reject or deadline)", *policy)
	}

	m, err := shard.NewOrdered(*index, keys.YCSBString, shard.Options{
		Shards:      *shards,
		Partitioner: part,
		ScanBatch:   *scanBatch,
		Heap:        pmem.Options{Track: true},
	})
	fatalIf(err)
	defer m.Release()

	if *doRecover {
		replays, err := m.RecoverCrashed()
		if err != nil {
			fmt.Fprintf(os.Stderr, "recipesrv: recovery: %v (degraded=%v quarantined=%v)\n",
				err, m.Degraded(), m.Quarantined())
		} else if len(replays) > 0 {
			fmt.Printf("recipesrv: recovered shards %v\n", replays)
		}
	}

	srv := server.New(m, server.Options{
		Mode:      wm,
		Batch:     *batch,
		IndexName: *index,
		Commit: commit.Options{
			Queue:         *queue,
			MaxBatch:      *maxBatch,
			Policy:        pol,
			FlushInterval: time.Duration(*flushUS) * time.Microsecond,
		},
	})

	l, err := net.Listen("tcp", *addr)
	fatalIf(err)
	// The CI smoke greps for this line before launching the load.
	fmt.Printf("recipesrv: listening on %s (index=%s shards=%d mode=%s)\n",
		l.Addr(), *index, *shards, wm)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		fmt.Printf("recipesrv: %v, draining\n", s)
		srv.Shutdown()
	}()

	if err := srv.Serve(l); err != nil {
		fatalf("server failed: %v", err)
	}
	fmt.Println("recipesrv: drained cleanly")
}

func fatalIf(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "recipesrv: "+format+"\n", args...)
	os.Exit(1)
}
