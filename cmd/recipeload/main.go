// Command recipeload drives a recipesrv endpoint with open-loop
// traffic: Poisson arrivals at a target aggregate QPS, a configurable
// op mix, and YCSB key distributions — then reports achieved QPS and
// error counts per op kind.
//
// Usage:
//
//	go run ./cmd/recipeload -addr 127.0.0.1:6399 -qps 2000 -duration 2s -load 10000
//	go run ./cmd/recipeload -dist zipfian -theta 0.99 -read 0.5 -insert 0.25 -update 0.25
//
// Exit status is non-zero when the run saw protocol errors or a reply
// deficit (requests accepted but never answered) — the CI smoke relies
// on this to prove clean drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/loadgen"
	"repro/internal/ycsb"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:6399", "server address")
		conns    = flag.Int("conns", 4, "client connections")
		qps      = flag.Float64("qps", 2000, "target aggregate arrival rate")
		duration = flag.Duration("duration", 2*time.Second, "open-loop window")
		loadN    = flag.Int("load", 10_000, "keys preloaded before the window")
		dist     = flag.String("dist", "uniform", `key distribution: "uniform", "zipfian" or "latest"`)
		theta    = flag.Float64("theta", 0.99, "zipfian/latest skew")
		readF    = flag.Float64("read", 0, "read fraction (all-zero mix = 90/5/5 read/insert/update)")
		insertF  = flag.Float64("insert", 0, "insert fraction")
		updateF  = flag.Float64("update", 0, "update fraction")
		scanF    = flag.Float64("scan", 0, "scan fraction")
		deleteF  = flag.Float64("delete", 0, "delete fraction")
		scanLen  = flag.Int("scanlen", 16, "SCAN page size")
		seed     = flag.Int64("seed", 42, "workload seed")
		strict   = flag.Bool("strict", true, "exit non-zero on protocol errors, reply deficit, or any error replies")
	)
	flag.Parse()

	d, err := ycsb.DistributionByName(*dist, *theta)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recipeload: %v\n", err)
		os.Exit(1)
	}
	rep, err := loadgen.Run(loadgen.Options{
		Addr:       *addr,
		Conns:      *conns,
		QPS:        *qps,
		Duration:   *duration,
		LoadN:      *loadN,
		Dist:       d,
		Seed:       *seed,
		ReadFrac:   *readF,
		InsertFrac: *insertF,
		UpdateFrac: *updateF,
		ScanFrac:   *scanF,
		DeleteFrac: *deleteF,
		ScanLen:    *scanLen,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "recipeload: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	if *strict && (rep.ProtoErrors > 0 || rep.Deficit() > 0 || rep.TotalErrors() > 0 || rep.PreloadErrors > 0) {
		fmt.Fprintln(os.Stderr, "recipeload: run saw errors (see report)")
		os.Exit(1)
	}
}
