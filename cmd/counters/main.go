// Command counters reproduces RECIPE's low-level performance-counter
// tables: Fig 4c (ordered indexes, integer keys), Fig 4d (ordered
// indexes, string keys) and Table 4 (hash indexes): average clwb and
// mfence instructions per insert, and average LLC misses per operation
// for each YCSB workload. The hardware counters of the paper (perf on a
// 32 MB LLC) are replaced by the simulated heap's clwb/fence counts and
// the set-associative LLC model.
//
// Usage:
//
//	go run ./cmd/counters -figure 4c
//	go run ./cmd/counters -table 4
//	go run ./cmd/counters -all
//	go run ./cmd/counters -selftest
//
// -selftest verifies the striped instrumentation (internal/stripe)
// against the shared-atomics reference heap: aggregated Stats() totals
// must match serial expectations exactly under concurrency, and a
// deterministic single-thread index run must produce bit-identical
// counters on both heap implementations.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
)

func main() {
	var (
		figure   = flag.String("figure", "", `"4c" or "4d"`)
		table    = flag.Int("table", 0, "4 for Table 4")
		all      = flag.Bool("all", false, "run 4c, 4d and Table 4")
		selftest = flag.Bool("selftest", false, "verify striped counter totals against serial expectations and the shared-atomics reference heap")
		loadN    = flag.Int("keys", 200_000, "keys loaded before the measured phase")
		opN      = flag.Int("ops", 200_000, "operations in the measured phase")
		threads  = flag.Int("threads", 4, "worker threads")
		seed     = flag.Int64("seed", 42, "workload seed")
	)
	// The paper's 64M-key working set dwarfs its 32 MB LLC; a scaled-down
	// run must scale the simulated LLC too or every access hits. 1 MB per
	// 200K keys keeps the ratio comparable.
	flag.IntVar(&llcKB, "llckb", 1024, "simulated LLC capacity in KB (paper machine: 32768 at 64M keys)")
	flag.Parse()
	if *selftest {
		runSelftest(*threads, *seed)
		return
	}
	if *all {
		ordered(keys.RandInt, *loadN, *opN, *threads, *seed)
		ordered(keys.YCSBString, *loadN, *opN, *threads, *seed)
		table4(*loadN, *opN, *threads, *seed)
		return
	}
	switch {
	case *figure == "4c":
		ordered(keys.RandInt, *loadN, *opN, *threads, *seed)
	case *figure == "4d":
		ordered(keys.YCSBString, *loadN, *opN, *threads, *seed)
	case *table == 4:
		table4(*loadN, *opN, *threads, *seed)
	default:
		fmt.Fprintln(os.Stderr, "specify -figure 4c|4d, -table 4, -selftest, or -all")
		os.Exit(2)
	}
}

// runSelftest proves the striped instrumentation loses nothing: (1) a
// concurrent hammer on the raw heap must aggregate to exact serial
// totals; (2) a deterministic single-thread P-ART run must produce
// bit-identical Stats on the striped and shared-atomics heaps.
func runSelftest(threads int, seed int64) {
	if threads < 2 {
		threads = 4
	}
	fail := false

	// (1) Conservation under concurrency.
	h := pmem.NewFast()
	const per = 100_000
	const size = 100 // 2 lines -> 2 clwb per Persist
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o := h.Alloc(size)
				h.Persist(o, 0, size)
				h.Fence()
			}
		}()
	}
	wg.Wait()
	s := h.Stats()
	n := uint64(threads) * per
	fmt.Printf("conservation: %d goroutines x %d ops -> clwb=%d fence=%d allocs=%d bytes=%d\n",
		threads, per, s.Clwb, s.Fence, s.Allocs, s.AllocBytes)
	if s.Clwb != 2*n || s.Fence != n || s.Allocs != n || s.AllocBytes != n*size {
		fmt.Printf("  FAIL: want clwb=%d fence=%d allocs=%d bytes=%d\n", 2*n, n, n, n*size)
		fail = true
	} else {
		fmt.Println("  OK: totals exactly match serial expectations")
	}

	// (2) Striped vs shared-atomics equality on a real index, single
	// thread so the op interleaving (and therefore every counter) is
	// deterministic.
	run := func(sharedAtomics bool) pmem.Stats {
		heap := pmem.New(pmem.Options{SharedAtomics: sharedAtomics})
		idx, err := core.NewOrdered("P-ART", heap, keys.RandInt)
		check(err)
		gen := keys.NewGenerator(keys.RandInt)
		res, err := harness.RunOrdered("P-ART", idx, gen, heap, ycsb.A, 20_000, 20_000, 1, seed)
		check(err)
		return res.Stats
	}
	striped, shared := run(false), run(true)
	fmt.Printf("striped heap:  %+v\n", striped)
	fmt.Printf("shared heap:   %+v\n", shared)
	if striped != shared {
		fmt.Println("  FAIL: striped and shared-atomics stats diverge")
		fail = true
	} else {
		fmt.Println("  OK: bit-identical counters on both heap implementations")
	}

	if fail {
		os.Exit(1)
	}
	fmt.Println("selftest PASS")
}

var llcKB int

func statsHeap() *pmem.Heap {
	return pmem.New(pmem.Options{LLC: cachesim.New(cachesim.Config{
		CapacityBytes: llcKB << 10,
		Ways:          16,
	})})
}

// measure runs the workload in stats mode and returns (clwb/insert,
// fence/insert from Load A only — the paper reports instruction counts
// per insert) and LLC misses/op per workload.
func ordered(kind keys.Kind, loadN, opN, threads int, seed int64) {
	fig := "4c"
	if kind == keys.YCSBString {
		fig = "4d"
	}
	fmt.Printf("\n=== Fig %s: performance counters, ordered indexes, %s keys ===\n", fig, kind)
	fmt.Printf("%-12s %6s %7s |", "PM Index", "clwb", "mfence")
	for _, w := range ycsb.All {
		fmt.Printf(" %7s", w.Name)
	}
	fmt.Println("   (insert instr | LLC miss/op)")
	for _, name := range core.OrderedNames {
		// clwb/mfence per insert, measured on the pure-insert load (the
		// paper's per-insert columns).
		heap := statsHeap()
		idx, err := core.NewOrdered(name, heap, kind)
		check(err)
		gen := keys.NewGenerator(kind)
		res, err := harness.RunOrdered(name, idx, gen, heap, ycsb.LoadA, loadN, opN, threads, seed)
		check(err)
		fmt.Printf("%-12s %6.1f %7.1f |", name, res.ClwbPerInsert(), res.FencePerInsert())
		fmt.Printf(" %7.1f", res.LLCMissPerOp())
		for _, w := range []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.E} {
			heap := statsHeap()
			idx, err := core.NewOrdered(name, heap, kind)
			check(err)
			gen := keys.NewGenerator(kind)
			res, err := harness.RunOrdered(name, idx, gen, heap, w, loadN, opN, threads, seed)
			check(err)
			fmt.Printf(" %7.1f", res.LLCMissPerOp())
		}
		fmt.Println()
	}
}

func table4(loadN, opN, threads int, seed int64) {
	fmt.Printf("\n=== Table 4: performance counters, hash indexes, integer keys ===\n")
	fmt.Printf("%-14s %6s %7s |", "PM Index", "clwb", "mfence")
	hashWorkloads := []ycsb.Workload{ycsb.LoadA, ycsb.A, ycsb.B, ycsb.C}
	for _, w := range hashWorkloads {
		fmt.Printf(" %7s", w.Name)
	}
	fmt.Println("   (insert instr | LLC miss/op)")
	for _, name := range core.HashNames {
		heap := statsHeap()
		idx, err := core.NewHash(name, heap)
		check(err)
		gen := keys.NewGenerator(keys.RandInt)
		res, err := harness.RunHash(name, idx, gen, heap, ycsb.LoadA, loadN, opN, threads, seed)
		check(err)
		fmt.Printf("%-14s %6.1f %7.1f |", name, res.ClwbPerInsert(), res.FencePerInsert())
		fmt.Printf(" %7.1f", res.LLCMissPerOp())
		for _, w := range hashWorkloads[1:] {
			heap := statsHeap()
			idx, err := core.NewHash(name, heap)
			check(err)
			gen := keys.NewGenerator(keys.RandInt)
			res, err := harness.RunHash(name, idx, gen, heap, w, loadN, opN, threads, seed)
			check(err)
			fmt.Printf(" %7.1f", res.LLCMissPerOp())
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
