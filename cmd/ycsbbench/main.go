// Command ycsbbench reproduces the throughput experiments of RECIPE §7:
// Fig 4a (ordered indexes, integer keys), Fig 4b (ordered indexes, string
// keys), Fig 5 (hash indexes, integer keys), and the §7.3 P-ART vs WOART
// comparison. It prints one row per index with one column per YCSB
// workload, mirroring the figures' series. Beyond the paper, -workloads
// runs any subset of YCSB A–F (including the update-bearing D and F the
// paper skipped) on every index, unsharded and sharded, with exact
// per-op-kind clwb/fence attribution, and -dist/-theta select the
// request distribution (uniform — the paper's setup — zipfian, or
// read-latest).
//
// Usage:
//
//	go run ./cmd/ycsbbench -figure 4a -keys 1000000 -ops 1000000 -threads 16
//	go run ./cmd/ycsbbench -figure all
//	go run ./cmd/ycsbbench -figure 4a -shards 8 -partition hash
//	go run ./cmd/ycsbbench -workloads A,B,C,D,E,F -dist zipfian -theta 0.99
//	go run ./cmd/ycsbbench -workloads D,F
//
// Simulated-PM latency is charged per clwb/fence (-clwbdelay/-fencedelay
// busy-work units) so flush-heavy indexes pay the write-path penalty they
// pay on Optane.
//
// -shards H partitions the key space across H independent heaps behind
// the sharded front-end (-partition selects hash or range routing for
// the ordered figures). Every cell additionally re-derives the
// aggregate Stats() delta from the per-shard deltas and requires
// bit-exact agreement — a guard against the aggregate and per-shard
// views ever diverging; the proof that the counters themselves conserve
// under concurrency is `cmd/counters -selftest` and the shard package's
// TestStatsConservation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/commit"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
	"repro/shard"
)

// config carries the flag settings every figure runner needs.
type config struct {
	loadN, opN, threads int
	seed                int64
	heap                pmem.Options
	shards              int
	part                shard.Partitioner
	scanBatch           int
	// batch > 1 routes writes in -workloads mode through the
	// group-commit layer: per-thread combiners queue up to batch
	// writes and flush them as one fence-coalesced group per shard.
	batch int
	// dist overrides every workload's request distribution when
	// non-nil (-dist); nil keeps each workload row's own default
	// (uniform for the Table 3 rows, latest for D, zipfian for F).
	dist ycsb.Distribution
	// async routes -workloads writes through the per-shard async
	// commit pipeline: writers enqueue and receive futures resolved
	// only after the covering fence retires (ack-after-fence).
	async bool
	// queue is the per-shard bounded queue capacity in async mode
	// (0 = commit.DefaultQueue).
	queue int
	// flush bounds staleness in async mode: the longest a queued op
	// waits before the committer flushes a short batch (0 = commit
	// whatever is queued immediately).
	flush time.Duration
	// reshard splits every sharded -workloads cell around the live
	// rebalancer: half the ops run against the static partition, the
	// load-aware rebalancer migrates hot slots, and the second half
	// runs against the flipped routing table — the row reports both
	// phases' throughput and imbalance.
	reshard bool
}

// commitOpts builds the async pipeline configuration from the flags:
// -queue caps admitted-but-uncommitted ops, -batch doubles as the
// drain's MaxBatch, -flushns bounds staleness.
func (c config) commitOpts() commit.Options {
	return commit.Options{Queue: c.queue, MaxBatch: c.batch, FlushInterval: c.flush}
}

// workloadFor returns w with the -dist override applied.
func (c config) workloadFor(w ycsb.Workload) ycsb.Workload {
	if c.dist != nil {
		w.Dist = c.dist
	}
	return w
}

func main() {
	var (
		figure     = flag.String("figure", "all", `which figure to run: "4a", "4b", "5", "woart", or "all"`)
		loadN      = flag.Int("keys", 1_000_000, "keys loaded before the measured phase (paper: 64M)")
		opN        = flag.Int("ops", 1_000_000, "operations in the measured phase (paper: 64M)")
		threads    = flag.Int("threads", min(16, runtime.GOMAXPROCS(0)), "worker threads (paper: 16)")
		seed       = flag.Int64("seed", 42, "workload seed")
		clwbDelay  = flag.Int("clwbdelay", 40, "simulated PM write-back cost per clwb (busy-work units)")
		fenceDelay = flag.Int("fencedelay", 20, "simulated cost per fence (busy-work units)")
		shards     = flag.Int("shards", 1, "partitions in the sharded front-end (1 = one heap per cell; -workloads mode also always runs H=1)")
		partition  = flag.String("partition", "hash", `key partitioner for ordered figures with -shards > 1: "hash" or "range" (hash figures always route by hash)`)
		scanBatch  = flag.Int("scanbatch", 0, "per-shard batch size for streaming merged scans (0 = default)")
		batch      = flag.Int("batch", 1, "group-commit batch size for -workloads mode writes (1 = per-op fences; >1 coalesces each batch's trailing fences into one per shard)")
		workloads  = flag.String("workloads", "", `comma-separated YCSB workloads to run on every index, sharded and unsharded (e.g. "D,F" or "A,B,C,D,E,F"); empty = run -figure instead`)
		async      = flag.Bool("async", false, "-workloads mode: route writes through the per-shard async commit pipeline (enqueue + ack-after-fence futures); adds an ack-ns column")
		queue      = flag.Int("queue", 0, "async per-shard queue capacity (admitted but uncommitted ops; 0 = default)")
		flushNS    = flag.Int64("flushns", 0, "async flush deadline in nanoseconds bounding staleness of short batches (0 = commit immediately)")
		distName   = flag.String("dist", "", `request distribution override: "uniform", "zipfian" or "latest"; empty = each workload's default (uniform; latest for D, zipfian for F)`)
		theta      = flag.Float64("theta", ycsb.DefaultTheta, "skew parameter in (0,1) for -dist zipfian/latest")
		reshard    = flag.Bool("reshard", false, "-workloads mode: run the load-aware rebalancer mid-cell on sharded rows and report before/after throughput and per-shard imbalance")
	)
	flag.Parse()
	part, ok := shard.ByName(*partition)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown partitioner %q (want hash or range)\n", *partition)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	var dist ycsb.Distribution
	if *distName != "" {
		var err error
		dist, err = ycsb.DistributionByName(*distName, *theta)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	cfg := config{
		loadN: *loadN, opN: *opN, threads: *threads, seed: *seed,
		heap:   pmem.Options{DelayClwb: *clwbDelay, DelayFence: *fenceDelay},
		shards: *shards, part: part, scanBatch: *scanBatch, batch: *batch, dist: dist,
		async: *async, queue: *queue, flush: time.Duration(*flushNS), reshard: *reshard,
	}
	if cfg.batch < 1 {
		fmt.Fprintf(os.Stderr, "-batch must be >= 1, got %d\n", cfg.batch)
		os.Exit(2)
	}
	if cfg.batch > 1 && *workloads == "" {
		fmt.Fprintln(os.Stderr, "-batch > 1 requires -workloads (the figure runners measure the paper's per-op write path)")
		os.Exit(2)
	}
	if cfg.async && *workloads == "" {
		fmt.Fprintln(os.Stderr, "-async requires -workloads (the figure runners measure the paper's per-op write path)")
		os.Exit(2)
	}
	if (cfg.queue != 0 || cfg.flush != 0) && !cfg.async {
		fmt.Fprintln(os.Stderr, "-queue and -flushns require -async")
		os.Exit(2)
	}
	if cfg.queue < 0 || cfg.flush < 0 {
		fmt.Fprintln(os.Stderr, "-queue and -flushns must be >= 0")
		os.Exit(2)
	}
	if cfg.reshard && *workloads == "" {
		fmt.Fprintln(os.Stderr, "-reshard requires -workloads (it splits each sharded cell around a live rebalance)")
		os.Exit(2)
	}
	if cfg.reshard && (cfg.async || cfg.batch > 1) {
		// Async pipelines pin routes at enqueue time and must drain
		// before a flip retires the handoff window (see shard's
		// ApplyShard doc), so the mid-cell rebalance stays on the
		// synchronous write path.
		fmt.Fprintln(os.Stderr, "-reshard is incompatible with -async and -batch > 1")
		os.Exit(2)
	}

	if *workloads != "" {
		runWorkloads(*workloads, cfg)
		return
	}

	run := func(fig string) {
		switch fig {
		case "4a":
			runOrdered(keys.RandInt, cfg)
		case "4b":
			runOrdered(keys.YCSBString, cfg)
		case "5":
			runHash(cfg)
		case "woart":
			runWOART(cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
			os.Exit(2)
		}
	}
	if *figure == "all" {
		for _, f := range []string{"4a", "4b", "5", "woart"} {
			run(f)
		}
		return
	}
	run(*figure)
}

// orderedCell runs one (index, workload) measurement through the sharded
// front-end and verifies aggregate-vs-per-shard counter conservation.
func orderedCell(name string, kind keys.Kind, w ycsb.Workload, cfg config) harness.Result {
	w = cfg.workloadFor(w)
	m, err := shard.NewOrdered(name, kind, shard.Options{
		Shards: cfg.shards, Partitioner: cfg.part, Heap: cfg.heap, ScanBatch: cfg.scanBatch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := keys.NewGenerator(kind)
	before := m.ShardStats()
	aggBefore := m.Stats()
	res, err := harness.RunOrdered(name, m, gen, m, w, cfg.loadN, cfg.opN, cfg.threads, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	checkConservation(name, w.Name, m.Stats().Sub(aggBefore), m.ShardStats(), before)
	m.Release()
	return res
}

// hashCell is orderedCell for unordered indexes.
func hashCell(name string, w ycsb.Workload, cfg config) harness.Result {
	w = cfg.workloadFor(w)
	m, err := shard.NewHash(name, shard.Options{Shards: cfg.shards, Heap: cfg.heap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := keys.NewGenerator(keys.RandInt)
	before := m.ShardStats()
	aggBefore := m.Stats()
	res, err := harness.RunHash(name, m, gen, m, w, cfg.loadN, cfg.opN, cfg.threads, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	checkConservation(name, w.Name, m.Stats().Sub(aggBefore), m.ShardStats(), before)
	m.Release()
	return res
}

// checkConservation asserts the aggregate Stats delta equals the
// field-wise sum of per-shard deltas bit-exactly. Today Stats() is
// defined as that sum, so this is a guard against the two views
// diverging (say, a future cached aggregate) rather than an independent
// proof; counter conservation itself is proven against serial
// expectations by `cmd/counters -selftest` and shard's
// TestStatsConservation.
func checkConservation(index, workload string, agg pmem.Stats, after, before []pmem.Stats) {
	var sum pmem.Stats
	for i := range after {
		sum = sum.Add(after[i].Sub(before[i]))
	}
	if agg != sum {
		fmt.Fprintf(os.Stderr, "\n%s/%s: aggregate stats %+v != sum of shard stats %+v\n",
			index, workload, agg, sum)
		os.Exit(1)
	}
}

func runOrdered(kind keys.Kind, cfg config) {
	fig := "4a"
	if kind == keys.YCSBString {
		fig = "4b"
	}
	fmt.Printf("\n=== Fig %s: ordered indexes, %s keys, %d threads, %d shard(s) (%s), load %d + run %d ===\n",
		fig, kind, cfg.threads, cfg.shards, cfg.part.Name(), cfg.loadN, cfg.opN)
	fmt.Printf("%-12s", "Index")
	for _, w := range ycsb.All {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range core.OrderedNames {
		fmt.Printf("%-12s", name)
		for _, w := range ycsb.All {
			fmt.Printf(" %10.3f", orderedCell(name, kind, w, cfg).MopsPerSec())
		}
		fmt.Println()
	}
}

func runHash(cfg config) {
	fmt.Printf("\n=== Fig 5: hash indexes, integer keys, %d threads, %d shard(s) (hash), load %d + run %d ===\n",
		cfg.threads, cfg.shards, cfg.loadN, cfg.opN)
	fmt.Printf("%-14s", "Index")
	hashWorkloads := []ycsb.Workload{ycsb.LoadA, ycsb.A, ycsb.B, ycsb.C}
	for _, w := range hashWorkloads {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range core.HashNames {
		fmt.Printf("%-14s", name)
		for _, w := range hashWorkloads {
			fmt.Printf(" %10.3f", hashCell(name, w, cfg).MopsPerSec())
		}
		fmt.Println()
	}
}

// kindsOf returns the op kinds a workload mix contains, in column
// order.
func kindsOf(w ycsb.Workload) []ycsb.OpKind {
	var ks []ycsb.OpKind
	add := func(k ycsb.OpKind, pct int) {
		if pct > 0 {
			ks = append(ks, k)
		}
	}
	add(ycsb.OpInsert, w.InsertPct)
	add(ycsb.OpRead, w.ReadPct)
	add(ycsb.OpUpdate, w.UpdatePct)
	add(ycsb.OpRMW, w.RMWPct)
	add(ycsb.OpScan, w.ScanPct)
	return ks
}

// runWorkloads is the beyond-the-paper mode: any subset of YCSB A–F on
// every index, each cell unsharded (H=1) and sharded, with exact
// per-op-kind clwb/fence columns from a single-threaded attribution
// pass (see harness.AttributeOrdered) that must conserve bit-exactly
// against the aggregate counters.
func runWorkloads(list string, cfg config) {
	var wls []ycsb.Workload
	for _, n := range strings.Split(list, ",") {
		w, err := ycsb.ByName(strings.TrimSpace(n))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wls = append(wls, w)
	}
	sharded := cfg.shards
	if sharded < 2 {
		sharded = 4
	}
	distNote := "per-workload default"
	if cfg.dist != nil {
		distNote = cfg.dist.Name()
	}
	mode := fmt.Sprintf("batch %d", cfg.batch)
	if cfg.async {
		q := cfg.queue
		if q < 1 {
			q = commit.DefaultQueue
		}
		mode = fmt.Sprintf("async · queue %d · batch %d · flush %v", q, cfg.batch, cfg.flush)
	}
	fmt.Printf("\n=== YCSB workloads %s · dist=%s · %d threads · load %d + run %d · H ∈ {1, %d} · %s ===\n",
		list, distNote, cfg.threads, cfg.loadN, cfg.opN, sharded, mode)
	orderedNames := append(append([]string{}, core.OrderedNames...), "WOART")
	for _, base := range wls {
		w := cfg.workloadFor(base)
		dist := "uniform"
		if w.Dist != nil {
			dist = w.Dist.Name()
		}
		fmt.Printf("\n-- Workload %s · %s · dist=%s · %s --\n", w.Name, w.Description, dist, w.AppPattern)
		kinds := kindsOf(w)
		fmt.Printf("%-14s %2s %9s %9s %7s", "Index", "H", "Mops/s", "fence/op", "imbal")
		if cfg.async {
			fmt.Printf(" %9s", "ack-ns")
		}
		for _, k := range kinds {
			fmt.Printf(" %12s %12s", "clwb/"+k.String(), "fence/"+k.String())
		}
		fmt.Println("   (imbal: max/mean per-shard op share; clwb/fence: exact single-thread attribution)")
		for _, name := range orderedNames {
			for _, h := range []int{1, sharded} {
				c := cfg
				c.shards = h
				workloadCellOrdered(name, w, c, kinds)
			}
		}
		if w.ScanPct > 0 {
			fmt.Printf("%-14s (scan workload — unordered indexes skipped)\n", "hash indexes")
			continue
		}
		for _, name := range core.HashNames {
			for _, h := range []int{1, sharded} {
				c := cfg
				c.shards = h
				workloadCellHash(name, w, c, kinds)
			}
		}
	}
}

// attrSizes caps the attribution pass: it is single-threaded and
// snapshots counters around every op, so it runs at reduced scale.
func attrSizes(cfg config) (loadN, opN int) {
	return min(cfg.loadN, 20_000), min(cfg.opN, 10_000)
}

// workloadCellOrdered runs one -workloads cell for an ordered index:
// a multi-threaded throughput run (with the per-shard counter
// conservation guard) plus the attribution pass, then prints one row.
func workloadCellOrdered(name string, w ycsb.Workload, cfg config, kinds []ycsb.OpKind) {
	if cfg.reshard && cfg.shards > 1 {
		reshardCellOrdered(name, w, cfg)
		return
	}
	m, err := shard.NewOrdered(name, keys.RandInt, shard.Options{
		Shards: cfg.shards, Partitioner: cfg.part, Heap: cfg.heap, ScanBatch: cfg.scanBatch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := keys.NewGenerator(keys.RandInt)
	before := m.ShardStats()
	aggBefore := m.Stats()
	var res harness.Result
	switch {
	case cfg.async:
		res, err = harness.RunOrderedAsync(name, m, gen, w, cfg.loadN, cfg.opN, cfg.threads, cfg.commitOpts(), cfg.seed)
	case cfg.batch > 1:
		res, err = harness.RunOrderedBatched(name, m, gen, w, cfg.loadN, cfg.opN, cfg.threads, cfg.batch, cfg.seed)
	default:
		res, err = harness.RunOrdered(name, m, gen, m, w, cfg.loadN, cfg.opN, cfg.threads, cfg.seed)
	}
	if err != nil {
		m.Release()
		if name == "FAST & FAIR" && strings.Contains(err.Error(), "read id") {
			// The §3 data-loss class the paper reports for FAST & FAIR
			// under concurrent insert storms (see
			// fastfair.TestKnownIssueConcurrentLoadLoss).
			fmt.Printf("%-14s %2d %9s  skipped: known FAST & FAIR data-loss class under concurrency\n", name, cfg.shards, "-")
			return
		}
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	checkConservation(name, w.Name, m.Stats().Sub(aggBefore), m.ShardStats(), before)
	imbal := cellImbalance(m.LoadReport(), cfg)
	m.Release()

	am, err := shard.NewOrdered(name, keys.RandInt, shard.Options{
		Shards: cfg.shards, Partitioner: cfg.part, Heap: cfg.heap, ScanBatch: cfg.scanBatch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	attrLoadN, attrOpN := attrSizes(cfg)
	var attr harness.Attribution
	switch {
	case cfg.async:
		attr, err = harness.AttributeOrderedAsync(am, gen, w, attrLoadN, attrOpN, cfg.commitOpts(), cfg.seed+1)
	case cfg.batch > 1:
		attr, err = harness.AttributeOrderedBatched(am, gen, w, attrLoadN, attrOpN, cfg.batch, cfg.seed+1)
	default:
		attr, err = harness.AttributeOrdered(am, gen, am, w, attrLoadN, attrOpN, cfg.seed+1)
	}
	am.Release()
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s attribution: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	if !attr.Conserves() {
		fmt.Fprintf(os.Stderr, "\n%s/%s: per-op-kind stats do not conserve against aggregate counters\n", name, w.Name)
		os.Exit(1)
	}
	printWorkloadRow(name, cfg, res, attr, kinds, imbal)
}

// workloadCellHash is workloadCellOrdered for unordered indexes.
func workloadCellHash(name string, w ycsb.Workload, cfg config, kinds []ycsb.OpKind) {
	if cfg.reshard && cfg.shards > 1 {
		reshardCellHash(name, w, cfg)
		return
	}
	m, err := shard.NewHash(name, shard.Options{Shards: cfg.shards, Heap: cfg.heap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := keys.NewGenerator(keys.RandInt)
	before := m.ShardStats()
	aggBefore := m.Stats()
	var res harness.Result
	switch {
	case cfg.async:
		res, err = harness.RunHashAsync(name, m, gen, w, cfg.loadN, cfg.opN, cfg.threads, cfg.commitOpts(), cfg.seed)
	case cfg.batch > 1:
		res, err = harness.RunHashBatched(name, m, gen, w, cfg.loadN, cfg.opN, cfg.threads, cfg.batch, cfg.seed)
	default:
		res, err = harness.RunHash(name, m, gen, m, w, cfg.loadN, cfg.opN, cfg.threads, cfg.seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	checkConservation(name, w.Name, m.Stats().Sub(aggBefore), m.ShardStats(), before)
	imbal := cellImbalance(m.LoadReport(), cfg)
	m.Release()

	am, err := shard.NewHash(name, shard.Options{Shards: cfg.shards, Heap: cfg.heap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	attrLoadN, attrOpN := attrSizes(cfg)
	var attr harness.Attribution
	switch {
	case cfg.async:
		attr, err = harness.AttributeHashAsync(am, gen, w, attrLoadN, attrOpN, cfg.commitOpts(), cfg.seed+1)
	case cfg.batch > 1:
		attr, err = harness.AttributeHashBatched(am, gen, w, attrLoadN, attrOpN, cfg.batch, cfg.seed+1)
	default:
		attr, err = harness.AttributeHash(am, gen, am, w, attrLoadN, attrOpN, cfg.seed+1)
	}
	am.Release()
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s attribution: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	if !attr.Conserves() {
		fmt.Fprintf(os.Stderr, "\n%s/%s: per-op-kind stats do not conserve against aggregate counters\n", name, w.Name)
		os.Exit(1)
	}
	printWorkloadRow(name, cfg, res, attr, kinds, imbal)
}

// cellImbalance condenses a cell's LoadReport into the imbal column:
// the max/mean per-shard share of every op the cell routed (load and
// run phases both count). Unsharded rows report NaN (printed "-") —
// one shard is trivially balanced.
func cellImbalance(rep shard.LoadReport, cfg config) float64 {
	if cfg.shards < 2 {
		return math.NaN()
	}
	return rep.Imbalance()
}

// reshardCellOrdered is the -reshard variant of a sharded ordered cell:
// load, close the load epoch, run half the ops against the static
// partition, rebalance under live routing, run the rest against the
// flipped table, and print both phases' throughput and run-phase
// imbalance. The aggregate-vs-per-shard conservation guard brackets
// the whole cell, so it also proves Stats() conserves across the
// migration's cross-heap copies.
func reshardCellOrdered(name string, w ycsb.Workload, cfg config) {
	m, err := shard.NewOrdered(name, keys.RandInt, shard.Options{
		Shards: cfg.shards, Partitioner: cfg.part, Heap: cfg.heap, ScanBatch: cfg.scanBatch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer m.Release()
	if err := m.EnableResharding(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := keys.NewGenerator(keys.RandInt)
	before := m.ShardStats()
	aggBefore := m.Stats()
	half := cfg.opN / 2
	if _, err := harness.RunOrdered(name, m, gen, m, w, cfg.loadN, 0, cfg.threads, cfg.seed); err != nil {
		if name == "FAST & FAIR" && strings.Contains(err.Error(), "read id") {
			fmt.Printf("%-14s %2d %9s  skipped: known FAST & FAIR data-loss class under concurrency\n", name, cfg.shards, "-")
			return
		}
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	m.LoadReport() // close the load epoch; imbalance below is run-phase only
	pre, err := harness.RunOrderedPhase(name, m, gen, m, w, cfg.loadN, half, cfg.threads, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	imbPre := m.LoadReport().Imbalance()
	rb, err := m.Rebalance(shard.RebalanceOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s rebalance: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	// Phase-2 inserts must start past phase 1's so fresh IDs stay fresh.
	post, err := harness.RunOrderedPhase(name, m, gen, m, w, cfg.loadN+pre.Inserts, cfg.opN-half, cfg.threads, cfg.seed+7)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	imbPost := m.LoadReport().Imbalance()
	checkConservation(name, w.Name, m.Stats().Sub(aggBefore), m.ShardStats(), before)
	printReshardRow(name, cfg, pre, post, imbPre, imbPost, len(rb.Moves))
}

// reshardCellHash is reshardCellOrdered for unordered indexes.
func reshardCellHash(name string, w ycsb.Workload, cfg config) {
	m, err := shard.NewHash(name, shard.Options{Shards: cfg.shards, Heap: cfg.heap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer m.Release()
	if err := m.EnableResharding(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := keys.NewGenerator(keys.RandInt)
	before := m.ShardStats()
	aggBefore := m.Stats()
	half := cfg.opN / 2
	if _, err := harness.RunHash(name, m, gen, m, w, cfg.loadN, 0, cfg.threads, cfg.seed); err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	m.LoadReport()
	pre, err := harness.RunHashPhase(name, m, gen, m, w, cfg.loadN, half, cfg.threads, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	imbPre := m.LoadReport().Imbalance()
	rb, err := m.Rebalance(shard.RebalanceOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s rebalance: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	post, err := harness.RunHashPhase(name, m, gen, m, w, cfg.loadN+pre.Inserts, cfg.opN-half, cfg.threads, cfg.seed+7)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	imbPost := m.LoadReport().Imbalance()
	checkConservation(name, w.Name, m.Stats().Sub(aggBefore), m.ShardStats(), before)
	printReshardRow(name, cfg, pre, post, imbPre, imbPost, len(rb.Moves))
}

// printReshardRow prints one -reshard cell: throughput and run-phase
// max/mean per-shard op share on each side of the mid-cell rebalance,
// plus how many slot/span moves the rebalancer committed.
func printReshardRow(name string, cfg config, pre, post harness.Result, imbPre, imbPost float64, moves int) {
	fmt.Printf("%-14s %2d   pre %8.3f Mops/s imbal %5.2f | rebalance ×%d | post %8.3f Mops/s imbal %5.2f\n",
		name, cfg.shards, pre.MopsPerSec(), imbPre, moves, post.MopsPerSec(), imbPost)
}

// printWorkloadRow prints one -workloads table row: throughput, the
// measured run phase's aggregate fences per op, in async mode the mean
// enqueue-to-ack latency, plus the attributed clwb/fence per op of
// each kind in the mix.
func printWorkloadRow(name string, cfg config, res harness.Result, attr harness.Attribution, kinds []ycsb.OpKind, imbal float64) {
	fencePerOp := 0.0
	if res.Ops > 0 {
		fencePerOp = float64(res.Stats.Fence) / float64(res.Ops)
	}
	fmt.Printf("%-14s %2d %9.3f %9.2f", name, cfg.shards, res.MopsPerSec(), fencePerOp)
	if math.IsNaN(imbal) {
		fmt.Printf(" %7s", "-")
	} else {
		fmt.Printf(" %7.2f", imbal)
	}
	if cfg.async {
		fmt.Printf(" %9d", res.MeanAckLatency().Nanoseconds())
	}
	for _, k := range kinds {
		fmt.Printf(" %12.2f %12.2f", attr.ClwbPer(k), attr.FencePer(k))
	}
	fmt.Println()
}

func runWOART(cfg config) {
	fmt.Printf("\n=== §7.3: P-ART vs WOART (global lock), integer keys, %d threads, %d shard(s) ===\n",
		cfg.threads, cfg.shards)
	fmt.Printf("%-8s", "Index")
	for _, w := range ycsb.All {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range []string{"P-ART", "WOART"} {
		fmt.Printf("%-8s", name)
		for _, w := range ycsb.All {
			fmt.Printf(" %10.3f", orderedCell(name, keys.RandInt, w, cfg).MopsPerSec())
		}
		fmt.Println()
	}
}
