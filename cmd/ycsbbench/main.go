// Command ycsbbench reproduces the throughput experiments of RECIPE §7:
// Fig 4a (ordered indexes, integer keys), Fig 4b (ordered indexes, string
// keys), Fig 5 (hash indexes, integer keys), and the §7.3 P-ART vs WOART
// comparison. It prints one row per index with one column per YCSB
// workload, mirroring the figures' series.
//
// Usage:
//
//	go run ./cmd/ycsbbench -figure 4a -keys 1000000 -ops 1000000 -threads 16
//	go run ./cmd/ycsbbench -figure all
//	go run ./cmd/ycsbbench -figure 4a -shards 8 -partition hash
//
// Simulated-PM latency is charged per clwb/fence (-clwbdelay/-fencedelay
// busy-work units) so flush-heavy indexes pay the write-path penalty they
// pay on Optane.
//
// -shards H partitions the key space across H independent heaps behind
// the sharded front-end (-partition selects hash or range routing for
// the ordered figures). Every cell additionally re-derives the
// aggregate Stats() delta from the per-shard deltas and requires
// bit-exact agreement — a guard against the aggregate and per-shard
// views ever diverging; the proof that the counters themselves conserve
// under concurrency is `cmd/counters -selftest` and the shard package's
// TestStatsConservation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
	"repro/shard"
)

// config carries the flag settings every figure runner needs.
type config struct {
	loadN, opN, threads int
	seed                int64
	heap                pmem.Options
	shards              int
	part                shard.Partitioner
	scanBatch           int
}

func main() {
	var (
		figure     = flag.String("figure", "all", `which figure to run: "4a", "4b", "5", "woart", or "all"`)
		loadN      = flag.Int("keys", 1_000_000, "keys loaded before the measured phase (paper: 64M)")
		opN        = flag.Int("ops", 1_000_000, "operations in the measured phase (paper: 64M)")
		threads    = flag.Int("threads", min(16, runtime.GOMAXPROCS(0)), "worker threads (paper: 16)")
		seed       = flag.Int64("seed", 42, "workload seed")
		clwbDelay  = flag.Int("clwbdelay", 40, "simulated PM write-back cost per clwb (busy-work units)")
		fenceDelay = flag.Int("fencedelay", 20, "simulated cost per fence (busy-work units)")
		shards     = flag.Int("shards", 1, "partitions in the sharded front-end (1 = one heap per cell)")
		partition  = flag.String("partition", "hash", `key partitioner for ordered figures with -shards > 1: "hash" or "range" (hash figures always route by hash)`)
		scanBatch  = flag.Int("scanbatch", 0, "per-shard batch size for streaming merged scans (0 = default)")
	)
	flag.Parse()
	part, ok := shard.ByName(*partition)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown partitioner %q (want hash or range)\n", *partition)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	cfg := config{
		loadN: *loadN, opN: *opN, threads: *threads, seed: *seed,
		heap:   pmem.Options{DelayClwb: *clwbDelay, DelayFence: *fenceDelay},
		shards: *shards, part: part, scanBatch: *scanBatch,
	}

	run := func(fig string) {
		switch fig {
		case "4a":
			runOrdered(keys.RandInt, cfg)
		case "4b":
			runOrdered(keys.YCSBString, cfg)
		case "5":
			runHash(cfg)
		case "woart":
			runWOART(cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
			os.Exit(2)
		}
	}
	if *figure == "all" {
		for _, f := range []string{"4a", "4b", "5", "woart"} {
			run(f)
		}
		return
	}
	run(*figure)
}

// orderedCell runs one (index, workload) measurement through the sharded
// front-end and verifies aggregate-vs-per-shard counter conservation.
func orderedCell(name string, kind keys.Kind, w ycsb.Workload, cfg config) harness.Result {
	m, err := shard.NewOrdered(name, kind, shard.Options{
		Shards: cfg.shards, Partitioner: cfg.part, Heap: cfg.heap, ScanBatch: cfg.scanBatch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := keys.NewGenerator(kind)
	before := m.ShardStats()
	aggBefore := m.Stats()
	res, err := harness.RunOrdered(name, m, gen, m, w, cfg.loadN, cfg.opN, cfg.threads, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	checkConservation(name, w.Name, m.Stats().Sub(aggBefore), m.ShardStats(), before)
	m.Release()
	return res
}

// hashCell is orderedCell for unordered indexes.
func hashCell(name string, w ycsb.Workload, cfg config) harness.Result {
	m, err := shard.NewHash(name, shard.Options{Shards: cfg.shards, Heap: cfg.heap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := keys.NewGenerator(keys.RandInt)
	before := m.ShardStats()
	aggBefore := m.Stats()
	res, err := harness.RunHash(name, m, gen, m, w, cfg.loadN, cfg.opN, cfg.threads, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
		os.Exit(1)
	}
	checkConservation(name, w.Name, m.Stats().Sub(aggBefore), m.ShardStats(), before)
	m.Release()
	return res
}

// checkConservation asserts the aggregate Stats delta equals the
// field-wise sum of per-shard deltas bit-exactly. Today Stats() is
// defined as that sum, so this is a guard against the two views
// diverging (say, a future cached aggregate) rather than an independent
// proof; counter conservation itself is proven against serial
// expectations by `cmd/counters -selftest` and shard's
// TestStatsConservation.
func checkConservation(index, workload string, agg pmem.Stats, after, before []pmem.Stats) {
	var sum pmem.Stats
	for i := range after {
		sum = sum.Add(after[i].Sub(before[i]))
	}
	if agg != sum {
		fmt.Fprintf(os.Stderr, "\n%s/%s: aggregate stats %+v != sum of shard stats %+v\n",
			index, workload, agg, sum)
		os.Exit(1)
	}
}

func runOrdered(kind keys.Kind, cfg config) {
	fig := "4a"
	if kind == keys.YCSBString {
		fig = "4b"
	}
	fmt.Printf("\n=== Fig %s: ordered indexes, %s keys, %d threads, %d shard(s) (%s), load %d + run %d ===\n",
		fig, kind, cfg.threads, cfg.shards, cfg.part.Name(), cfg.loadN, cfg.opN)
	fmt.Printf("%-12s", "Index")
	for _, w := range ycsb.All {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range core.OrderedNames {
		fmt.Printf("%-12s", name)
		for _, w := range ycsb.All {
			fmt.Printf(" %10.3f", orderedCell(name, kind, w, cfg).MopsPerSec())
		}
		fmt.Println()
	}
}

func runHash(cfg config) {
	fmt.Printf("\n=== Fig 5: hash indexes, integer keys, %d threads, %d shard(s) (hash), load %d + run %d ===\n",
		cfg.threads, cfg.shards, cfg.loadN, cfg.opN)
	fmt.Printf("%-14s", "Index")
	hashWorkloads := []ycsb.Workload{ycsb.LoadA, ycsb.A, ycsb.B, ycsb.C}
	for _, w := range hashWorkloads {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range core.HashNames {
		fmt.Printf("%-14s", name)
		for _, w := range hashWorkloads {
			fmt.Printf(" %10.3f", hashCell(name, w, cfg).MopsPerSec())
		}
		fmt.Println()
	}
}

func runWOART(cfg config) {
	fmt.Printf("\n=== §7.3: P-ART vs WOART (global lock), integer keys, %d threads, %d shard(s) ===\n",
		cfg.threads, cfg.shards)
	fmt.Printf("%-8s", "Index")
	for _, w := range ycsb.All {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range []string{"P-ART", "WOART"} {
		fmt.Printf("%-8s", name)
		for _, w := range ycsb.All {
			fmt.Printf(" %10.3f", orderedCell(name, keys.RandInt, w, cfg).MopsPerSec())
		}
		fmt.Println()
	}
}
