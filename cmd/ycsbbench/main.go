// Command ycsbbench reproduces the throughput experiments of RECIPE §7:
// Fig 4a (ordered indexes, integer keys), Fig 4b (ordered indexes, string
// keys), Fig 5 (hash indexes, integer keys), and the §7.3 P-ART vs WOART
// comparison. It prints one row per index with one column per YCSB
// workload, mirroring the figures' series.
//
// Usage:
//
//	go run ./cmd/ycsbbench -figure 4a -keys 1000000 -ops 1000000 -threads 16
//	go run ./cmd/ycsbbench -figure all
//
// Simulated-PM latency is charged per clwb/fence (-clwbdelay/-fencedelay
// busy-work units) so flush-heavy indexes pay the write-path penalty they
// pay on Optane.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
)

func main() {
	var (
		figure     = flag.String("figure", "all", `which figure to run: "4a", "4b", "5", "woart", or "all"`)
		loadN      = flag.Int("keys", 1_000_000, "keys loaded before the measured phase (paper: 64M)")
		opN        = flag.Int("ops", 1_000_000, "operations in the measured phase (paper: 64M)")
		threads    = flag.Int("threads", min(16, runtime.GOMAXPROCS(0)), "worker threads (paper: 16)")
		seed       = flag.Int64("seed", 42, "workload seed")
		clwbDelay  = flag.Int("clwbdelay", 40, "simulated PM write-back cost per clwb (busy-work units)")
		fenceDelay = flag.Int("fencedelay", 20, "simulated cost per fence (busy-work units)")
	)
	flag.Parse()

	run := func(fig string) {
		switch fig {
		case "4a":
			runOrdered(keys.RandInt, *loadN, *opN, *threads, *seed, *clwbDelay, *fenceDelay)
		case "4b":
			runOrdered(keys.YCSBString, *loadN, *opN, *threads, *seed, *clwbDelay, *fenceDelay)
		case "5":
			runHash(*loadN, *opN, *threads, *seed, *clwbDelay, *fenceDelay)
		case "woart":
			runWOART(*loadN, *opN, *threads, *seed, *clwbDelay, *fenceDelay)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
			os.Exit(2)
		}
	}
	if *figure == "all" {
		for _, f := range []string{"4a", "4b", "5", "woart"} {
			run(f)
		}
		return
	}
	run(*figure)
}

func heapFor(clwbDelay, fenceDelay int) *pmem.Heap {
	return pmem.New(pmem.Options{DelayClwb: clwbDelay, DelayFence: fenceDelay})
}

func runOrdered(kind keys.Kind, loadN, opN, threads int, seed int64, cd, fd int) {
	fig := "4a"
	if kind == keys.YCSBString {
		fig = "4b"
	}
	fmt.Printf("\n=== Fig %s: ordered indexes, %s keys, %d threads, load %d + run %d ===\n",
		fig, kind, threads, loadN, opN)
	fmt.Printf("%-12s", "Index")
	for _, w := range ycsb.All {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range core.OrderedNames {
		fmt.Printf("%-12s", name)
		for _, w := range ycsb.All {
			heap := heapFor(cd, fd)
			idx, err := core.NewOrdered(name, heap, kind)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			gen := keys.NewGenerator(kind)
			res, err := harness.RunOrdered(name, idx, gen, heap, w, loadN, opN, threads, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
				os.Exit(1)
			}
			fmt.Printf(" %10.3f", res.MopsPerSec())
		}
		fmt.Println()
	}
}

func runHash(loadN, opN, threads int, seed int64, cd, fd int) {
	fmt.Printf("\n=== Fig 5: hash indexes, integer keys, %d threads, load %d + run %d ===\n",
		threads, loadN, opN)
	fmt.Printf("%-14s", "Index")
	hashWorkloads := []ycsb.Workload{ycsb.LoadA, ycsb.A, ycsb.B, ycsb.C}
	for _, w := range hashWorkloads {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range core.HashNames {
		fmt.Printf("%-14s", name)
		for _, w := range hashWorkloads {
			heap := heapFor(cd, fd)
			idx, err := core.NewHash(name, heap)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			gen := keys.NewGenerator(keys.RandInt)
			res, err := harness.RunHash(name, idx, gen, heap, w, loadN, opN, threads, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
				os.Exit(1)
			}
			fmt.Printf(" %10.3f", res.MopsPerSec())
		}
		fmt.Println()
	}
}

func runWOART(loadN, opN, threads int, seed int64, cd, fd int) {
	fmt.Printf("\n=== §7.3: P-ART vs WOART (global lock), integer keys, %d threads ===\n", threads)
	fmt.Printf("%-8s", "Index")
	for _, w := range ycsb.All {
		fmt.Printf(" %10s", w.Name)
	}
	fmt.Println("   (Mops/s)")
	for _, name := range []string{"P-ART", "WOART"} {
		fmt.Printf("%-8s", name)
		for _, w := range ycsb.All {
			heap := heapFor(cd, fd)
			idx, err := core.NewOrdered(name, heap, keys.RandInt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			gen := keys.NewGenerator(keys.RandInt)
			res, err := harness.RunOrdered(name, idx, gen, heap, w, loadN, opN, threads, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\n%s/%s: %v\n", name, w.Name, err)
				os.Exit(1)
			}
			fmt.Printf(" %10.3f", res.MopsPerSec())
		}
		fmt.Println()
	}
}
