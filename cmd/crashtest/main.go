// Command crashtest reproduces §5/§7.5: for every index it generates N
// crash states (probabilistic crashes during a write-heavy load), runs a
// multi-threaded mixed phase after recovery, and reads back every
// successfully inserted key. RECIPE-converted indexes must pass with no
// lost keys; the Faithful modes of FAST & FAIR and CCEH reproduce the
// published bugs (reported as FAIL rows, which is the expected outcome —
// the paper's finding, not a defect of the harness).
//
// Usage:
//
//	go run ./cmd/crashtest                 # paper scale-down: 200 states
//	go run ./cmd/crashtest -states 10000   # the paper's 10K states
//	go run ./cmd/crashtest -shards 8       # per-shard recovery campaign width
//
// The sharded section arms a crash in one shard of an H-shard front-end
// and requires recovery to replay only that shard (extraReplays must be
// 0) with no committed key lost anywhere.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cceh"
	"repro/internal/core"
	"repro/internal/fastfair"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func main() {
	var (
		states  = flag.Int("states", 200, "crash states per index (paper: 10000)")
		loadN   = flag.Int("load", 10_000, "entries loaded while crashes are armed (paper: 10000)")
		mixedN  = flag.Int("mixed", 10_000, "mixed post-crash operations (paper: 10000)")
		threads = flag.Int("threads", 4, "threads in the mixed phase (paper: 4)")
		shards  = flag.Int("shards", 4, "front-end width for the per-shard recovery campaign")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}

	fmt.Printf("=== §7.5 crash-recovery testing: %d states, load %d, mixed %d x %d threads ===\n\n",
		*states, *loadN, *mixedN, *threads)

	fmt.Println("RECIPE-converted indexes (must pass):")
	for _, name := range []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree"} {
		name := name
		rep := harness.CrashCampaignOrdered(name, func(h *pmem.Heap) core.OrderedIndex {
			idx, err := core.NewOrdered(name, h, keys.RandInt)
			if err != nil {
				panic(err)
			}
			return idx
		}, keys.RandInt, *states, *loadN, *mixedN, *threads)
		fmt.Println("  " + rep.String())
	}
	rep := harness.CrashCampaignHash("P-CLHT", func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash("P-CLHT", h)
		if err != nil {
			panic(err)
		}
		return idx
	}, *states, *loadN, *mixedN, *threads)
	fmt.Println("  " + rep.String())

	// FAST & FAIR is expected to lose keys here: §3 reports a data-loss
	// design bug in its split protocol under concurrent writes, and this
	// campaign (crash + concurrent post-crash writers) reproduces that
	// class of failure even with the durability fix applied. CCEH's Fixed
	// mode passes.
	fmt.Println("\nHand-crafted baselines (FAST & FAIR FAIL expected — the §3 data-loss class):")
	ff := harness.CrashCampaignOrdered("FAST & FAIR", func(h *pmem.Heap) core.OrderedIndex {
		idx, err := core.NewOrdered("FAST & FAIR", h, keys.RandInt)
		if err != nil {
			panic(err)
		}
		return idx
	}, keys.RandInt, *states, *loadN, *mixedN, *threads)
	fmt.Println("  " + ff.String())
	cx := harness.CrashCampaignHash("CCEH", func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash("CCEH", h)
		if err != nil {
			panic(err)
		}
		return idx
	}, *states, *loadN, *mixedN, *threads)
	fmt.Println("  " + cx.String())

	fmt.Printf("\nSharded front-end, %d shards (crash in shard k must replay only shard k):\n", *shards)
	for _, name := range []string{"P-ART", "P-Masstree"} {
		rep := harness.CrashCampaignSharded(name, keys.RandInt, *shards, *states, *loadN, *mixedN, *threads)
		fmt.Println("  " + rep.String())
	}

	fmt.Println("\nLossy power-failure images (crash at every site, power-cycle, recover, verify;")
	fmt.Println("PARTIAL = unacked in-flight op vanished atomically, LOST-ACK/CORRUPT = real bug):")
	for _, policy := range pmem.Policies {
		for _, name := range []string{"P-ART", "P-Masstree"} {
			name := name
			rep := harness.LossyCampaignOrdered(name, func(h *pmem.Heap) core.OrderedIndex {
				idx, err := core.NewOrdered(name, h, keys.RandInt)
				if err != nil {
					panic(err)
				}
				return idx
			}, keys.RandInt, policy, 42, 500, 50, 0)
			fmt.Println("  " + rep.String())
		}
	}

	fmt.Println("\nPublished-bug reproductions (FAIL expected — §3/§7.5 findings):")
	cf := harness.CrashCampaignHash("CCEH-faithful", func(h *pmem.Heap) core.HashIndex {
		return ccehFaithful(h)
	}, *states, *loadN, *mixedN, *threads)
	fmt.Println("  " + cf.String() + "  (directory-doubling metadata torn -> stalls)")

	fmt.Println("\nDurability (§5: every dirtied line flushed; FAIL rows reproduce the")
	fmt.Println("unpersisted-initial-allocation finding):")
	for _, name := range []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree"} {
		name := name
		rep := harness.DurabilityOrdered(name, func(h *pmem.Heap) core.OrderedIndex {
			idx, err := core.NewOrdered(name, h, keys.YCSBString)
			if err != nil {
				panic(err)
			}
			return idx
		}, keys.YCSBString, 2000)
		fmt.Println("  " + rep.String())
	}
	dr := harness.DurabilityHash("P-CLHT", func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash("P-CLHT", h)
		if err != nil {
			panic(err)
		}
		return idx
	}, 2000)
	fmt.Println("  " + dr.String())
	dff := harness.DurabilityOrdered("FF-faithful", func(h *pmem.Heap) core.OrderedIndex {
		return ffFaithful(h)
	}, keys.RandInt, 2000)
	fmt.Println("  " + dff.String() + "  (initial allocation unpersisted — §7.5 finding)")
	dcf := harness.DurabilityHash("CCEH-faithful", func(h *pmem.Heap) core.HashIndex {
		return ccehFaithful(h)
	}, 2000)
	fmt.Println("  " + dcf.String() + "  (initial allocation unpersisted — §7.5 finding)")
}

// ccehFaithful adapts the Faithful-mode CCEH to the HashIndex interface.
func ccehFaithful(h *pmem.Heap) core.HashIndex {
	return faithfulCCEH{cceh.NewWithMode(h, cceh.Faithful)}
}

type faithfulCCEH struct{ t *cceh.Index }

func (f faithfulCCEH) Insert(k, v uint64) error       { return f.t.Insert(k, v) }
func (f faithfulCCEH) Update(k, v uint64) error       { return f.t.Insert(k, v) }
func (f faithfulCCEH) Lookup(k uint64) (uint64, bool) { return f.t.Lookup(k) }
func (f faithfulCCEH) Delete(k uint64) (bool, error)  { return f.t.Delete(k) }
func (f faithfulCCEH) Recover() error                 { return f.t.Recover() }
func (f faithfulCCEH) Len() int                       { return f.t.Len() }

// ffFaithful adapts Faithful-mode FAST & FAIR to OrderedIndex.
func ffFaithful(h *pmem.Heap) core.OrderedIndex {
	return faithfulFF{fastfair.NewWithMode(h, keys.RandInt, fastfair.Faithful)}
}

type faithfulFF struct{ t *fastfair.Tree }

func (f faithfulFF) Insert(k []byte, v uint64) error { return f.t.Insert(k, v) }
func (f faithfulFF) Update(k []byte, v uint64) error { return f.t.Insert(k, v) }
func (f faithfulFF) Lookup(k []byte) (uint64, bool)  { return f.t.Lookup(k) }
func (f faithfulFF) Delete(k []byte) (bool, error)   { return f.t.Delete(k) }
func (f faithfulFF) Recover() error                  { f.t.Recover(); return nil }
func (f faithfulFF) Len() int                        { return f.t.Len() }
func (f faithfulFF) Scan(s []byte, c int, fn func([]byte, uint64) bool) int {
	return f.t.Scan(s, c, fn)
}
