// Command loccount regenerates Table 1 for this Go port: for each
// converted index package it counts total core lines of code and the
// lines belonging to the RECIPE conversion (every line or block tagged
// with a "RECIPE:" comment — the flush/fence placements, the helper
// mechanisms, and the crash-detection code). It prints the port's numbers
// next to the paper's, plus Tables 2 and 3.
//
// Usage:
//
//	go run ./cmd/loccount
//	go run ./cmd/loccount -conditions   # only Tables 2 and 3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/ycsb"
)

// pkgFor maps evaluation names to source directories.
var pkgFor = map[string]string{
	"CLHT":     "internal/clht",
	"HOT":      "internal/hot",
	"BwTree":   "internal/bwtree",
	"ART":      "internal/art",
	"Masstree": "internal/masstree",
}

func main() {
	conditionsOnly := flag.Bool("conditions", false, "print only Tables 2 and 3")
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	if !*conditionsOnly {
		fmt.Println("=== Table 1 (paper figures + this port's LOC from RECIPE: tags) ===")
		fmt.Println(core.Table1())
		fmt.Println("This Go port:")
		fmt.Printf("%-10s | %-9s | %8s | %9s\n", "Index", "Condition", "Core LOC", "Conv. LOC")
		fmt.Println("-----------+-----------+----------+----------")
		for _, info := range core.Converted {
			dir, ok := pkgFor[info.Source]
			if !ok {
				continue
			}
			total, conv, err := countDir(filepath.Join(*root, dir))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-10s | %-9s | %8d | %4d (%.0f%%)\n",
				info.Source, info.Condition, total, conv, float64(conv)/float64(total)*100)
		}
		fmt.Println()
	}
	fmt.Println("=== Table 2 ===")
	fmt.Println(core.Table2())
	fmt.Println("=== Table 3 ===")
	fmt.Println(ycsb.Describe())
}

// countDir returns (core LOC excluding tests and blanks, conversion LOC).
// A line tagged "RECIPE:" counts itself and the statement lines that
// follow it until the next blank line or closing brace at the same level
// — matching how the paper counts the inserted flush/fence/helper lines.
func countDir(dir string) (total, conv int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return 0, 0, err
		}
		sc := bufio.NewScanner(f)
		inConv := 0 // statement lines still attributed to a RECIPE tag
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				inConv = 0
				continue
			}
			total++
			if strings.Contains(line, "RECIPE:") || strings.Contains(line, "RECIPE-FIXED:") {
				conv++
				inConv = 2 // attribute the next two statement lines
				continue
			}
			if inConv > 0 && !strings.HasPrefix(line, "//") {
				conv++
				inConv--
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return 0, 0, err
		}
	}
	return total, conv, nil
}
