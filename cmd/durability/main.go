// Command durability runs the §5 durability test in isolation: it loads
// each index with traced allocations/stores/flushes (the shadow-tracker
// analogue of the paper's PIN tracing) and verifies that every dirtied
// cache line is written back and fenced by the time each operation
// returns. The Faithful modes reproduce the §7.5 finding that FAST & FAIR
// and CCEH fail to persist the initial node allocation.
//
// With -sites (the default) it also runs the per-crash-site durability
// campaign: for every crash site the load passes through, crash there,
// recover, and verify the recovery and repair write paths flush
// everything they dirty. The per-site trials are independent Track-mode
// heaps, so they fan out across -workers goroutines; the report is
// collected in site order and is identical for any worker count.
//
// -model lossy switches to the adversarial power-failure campaign: at
// every crash site the heap materialises a true post-power-loss image
// (stores never written back revert; unfenced write-backs follow
// -policy: revert, keep, torn, or all three), then recovery runs
// against that image and a full-dataset readback classifies each site
// CLEAN, PARTIAL (unacknowledged in-flight op vanished), LOST-ACK
// (acknowledged write missing — a real durability bug), or CORRUPT.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cceh"
	"repro/internal/core"
	"repro/internal/fastfair"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func main() {
	n := flag.Int("ops", 5000, "traced insert operations per index")
	sites := flag.Bool("sites", true, "also run the per-crash-site durability campaign")
	postOps := flag.Int("postops", 2000, "traced post-crash inserts per crash site")
	workers := flag.Int("workers", 0, "worker goroutines for the per-site campaign (0 = GOMAXPROCS)")
	model := flag.String("model", "tracker", "failure model: tracker (flush-coverage) or lossy (power-failure images)")
	policyFlag := flag.String("policy", "all", "lossy cycle policy for unfenced write-backs: revert, keep, torn, or all")
	seed := flag.Int64("seed", 42, "campaign seed (lossy model; torn coin flips derive from it)")
	batch := flag.Int("batch", 1, "group-commit batch size for the campaigns' write path (1 = per-op fences; >1 crashes inside fence-coalesced group commits too)")
	async := flag.Bool("async", false, "route campaign writes through the async commit pipeline (enqueue + ack-after-fence futures; -batch sets the committer's queue and drain size) and crash inside its drain loop too")
	flag.Parse()
	if *batch < 1 {
		fmt.Fprintf(os.Stderr, "-batch must be >= 1, got %d\n", *batch)
		os.Exit(2)
	}
	if *async && *batch < 2 {
		// A 1-deep queue acks per op; the interesting async crashes need
		// multi-op batches in flight, so default to the group size the
		// batched campaigns use.
		*batch = 8
	}

	switch *model {
	case "tracker":
	case "lossy":
		runLossy(*policyFlag, *seed, *n, *postOps, *workers, *batch, *async)
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown -model %q (want tracker or lossy)\n", *model)
		os.Exit(2)
	}

	fmt.Printf("=== §5 durability test: %d traced inserts per index ===\n\n", *n)
	for _, name := range []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree", "FAST & FAIR", "WOART"} {
		name := name
		rep := harness.DurabilityOrdered(name, func(h *pmem.Heap) core.OrderedIndex {
			idx, err := core.NewOrdered(name, h, keys.YCSBString)
			if err != nil {
				panic(err)
			}
			return idx
		}, keys.YCSBString, *n)
		fmt.Println(rep.String())
	}
	for _, name := range []string{"P-CLHT", "CCEH", "Level Hashing"} {
		name := name
		rep := harness.DurabilityHash(name, func(h *pmem.Heap) core.HashIndex {
			idx, err := core.NewHash(name, h)
			if err != nil {
				panic(err)
			}
			return idx
		}, *n)
		fmt.Println(rep.String())
	}

	fmt.Println("\nFaithful modes (FAIL expected — the §7.5 unpersisted-allocation finding):")
	rep := harness.DurabilityOrdered("FF-faithful", func(h *pmem.Heap) core.OrderedIndex {
		return ffAdapter{fastfair.NewWithMode(h, keys.RandInt, fastfair.Faithful)}
	}, keys.RandInt, *n)
	fmt.Println(rep.String())
	rep2 := harness.DurabilityHash("CCEH-faithful", func(h *pmem.Heap) core.HashIndex {
		return ccehAdapter{cceh.NewWithMode(h, cceh.Faithful)}
	}, *n)
	fmt.Println(rep2.String())

	if !*sites {
		return
	}
	switch {
	case *async:
		fmt.Printf("\n=== §5 durability across crash sites (async commit pipeline, queue/batch %d): crash, recover, %d traced post-crash inserts per site ===\n\n", *batch, *postOps)
	case *batch > 1:
		fmt.Printf("\n=== §5 durability across crash sites (batched, group size %d): crash, recover, %d traced post-crash inserts per site ===\n\n", *batch, *postOps)
	default:
		fmt.Printf("\n=== §5 durability across crash sites: crash, recover, %d traced post-crash inserts per site ===\n\n", *postOps)
	}
	for _, name := range []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree", "FAST & FAIR", "WOART"} {
		name := name
		factory := func(h *pmem.Heap) core.OrderedIndex {
			idx, err := core.NewOrdered(name, h, keys.RandInt)
			if err != nil {
				panic(err)
			}
			return idx
		}
		var rep harness.SiteCampaignReport
		switch {
		case *async:
			rep = harness.DurabilitySitesOrderedAsync(name, factory, keys.RandInt, *n, *postOps, *batch, *workers)
		case *batch > 1:
			rep = harness.DurabilitySitesOrderedBatched(name, factory, keys.RandInt, *n, *postOps, *batch, *workers)
		default:
			rep = harness.DurabilitySitesOrdered(name, factory, keys.RandInt, *n, *postOps, *workers)
		}
		printSites(rep)
	}
	for _, name := range []string{"P-CLHT", "CCEH", "Level Hashing"} {
		name := name
		factory := func(h *pmem.Heap) core.HashIndex {
			idx, err := core.NewHash(name, h)
			if err != nil {
				panic(err)
			}
			return idx
		}
		var rep harness.SiteCampaignReport
		switch {
		case *async:
			rep = harness.DurabilitySitesHashAsync(name, factory, *n, *postOps, *batch, *workers)
		case *batch > 1:
			rep = harness.DurabilitySitesHashBatched(name, factory, *n, *postOps, *batch, *workers)
		default:
			rep = harness.DurabilitySitesHash(name, factory, *n, *postOps, *workers)
		}
		printSites(rep)
	}
}

// runLossy drives every index through the lossy power-failure campaign
// under the selected policies, then replays the Faithful FAST & FAIR
// mode as a negative control: its missing initial-allocation persist
// must surface as LOST-ACK/CORRUPT under the revert policy. With
// batch > 1 the writes go through the group-commit layer, so the sweep
// also crashes at the group boundary sites and acknowledgement is
// per batch. With async the writes go through the async commit
// pipeline instead: acknowledgement is per future (ack-after-fence),
// and the sweep crashes inside the committer drain loop too.
func runLossy(policyFlag string, seed int64, loadN, postN, workers, batch int, async bool) {
	var policies []pmem.Policy
	if policyFlag == "all" {
		policies = pmem.Policies
	} else {
		p, err := pmem.ParsePolicy(policyFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		policies = []pmem.Policy{p}
	}

	switch {
	case async:
		fmt.Printf("=== lossy power-failure campaign (async commit pipeline, queue/batch %d): crash at every site, power-cycle, recover, verify per-future acks (seed %d) ===\n\n", batch, seed)
	case batch > 1:
		fmt.Printf("=== lossy power-failure campaign (batched, group size %d): crash at every site, power-cycle, recover, verify (seed %d) ===\n\n", batch, seed)
	default:
		fmt.Printf("=== lossy power-failure campaign: crash at every site, power-cycle, recover, verify (seed %d) ===\n\n", seed)
	}
	failed := false
	for _, policy := range policies {
		for _, name := range []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree", "FAST & FAIR", "WOART"} {
			name := name
			factory := func(h *pmem.Heap) core.OrderedIndex {
				idx, err := core.NewOrdered(name, h, keys.RandInt)
				if err != nil {
					panic(err)
				}
				return idx
			}
			var rep harness.LossyCampaignReport
			switch {
			case async:
				rep = harness.LossyCampaignOrderedAsync(name, factory, keys.RandInt, policy, seed, loadN, postN, batch, workers)
			case batch > 1:
				rep = harness.LossyCampaignOrderedBatched(name, factory, keys.RandInt, policy, seed, loadN, postN, batch, workers)
			default:
				rep = harness.LossyCampaignOrdered(name, factory, keys.RandInt, policy, seed, loadN, postN, workers)
			}
			failed = printLossy(rep) || failed
		}
		for _, name := range []string{"P-CLHT", "CCEH", "Level Hashing"} {
			name := name
			factory := func(h *pmem.Heap) core.HashIndex {
				idx, err := core.NewHash(name, h)
				if err != nil {
					panic(err)
				}
				return idx
			}
			var rep harness.LossyCampaignReport
			switch {
			case async:
				rep = harness.LossyCampaignHashAsync(name, factory, policy, seed, loadN, postN, batch, workers)
			case batch > 1:
				rep = harness.LossyCampaignHashBatched(name, factory, policy, seed, loadN, postN, batch, workers)
			default:
				rep = harness.LossyCampaignHash(name, factory, policy, seed, loadN, postN, workers)
			}
			failed = printLossy(rep) || failed
		}
		fmt.Println()
	}

	fmt.Println("Faithful mode under revert (FAIL expected — the unpersisted allocation becomes observable loss):")
	rep := harness.LossyCampaignOrdered("FF-faithful", func(h *pmem.Heap) core.OrderedIndex {
		return ffAdapter{fastfair.NewWithMode(h, keys.RandInt, fastfair.Faithful)}
	}, keys.RandInt, pmem.PolicyRevert, seed, loadN, postN, workers)
	printLossy(rep)

	if failed {
		os.Exit(1)
	}
}

// printLossy prints the campaign summary plus one row per losing site,
// and reports whether the campaign found real loss.
func printLossy(rep harness.LossyCampaignReport) bool {
	fmt.Println(rep.String())
	for _, s := range rep.Sites {
		if s.Outcome == harness.OutcomeLostAck || s.Outcome == harness.OutcomeCorrupt {
			fmt.Printf("    %-28s %v lostAcks=%d %s\n", s.Site, s.Outcome, s.LostAcks, s.Detail)
		}
	}
	return !rep.Pass()
}

// printSites prints the campaign summary, with per-site rows only for
// sites that found something (the common all-PASS case stays one line).
func printSites(rep harness.SiteCampaignReport) {
	fmt.Println(rep.String())
	for _, s := range rep.Sites {
		if s.RecoveryFailed || s.RecoveryViolations != 0 || s.OpViolations != 0 {
			fmt.Printf("    %-28s recoveryFail=%v recoveryViol=%d opViol=%d\n",
				s.Site, s.RecoveryFailed, s.RecoveryViolations, s.OpViolations)
		}
	}
}

type ffAdapter struct{ t *fastfair.Tree }

func (f ffAdapter) Insert(k []byte, v uint64) error { return f.t.Insert(k, v) }
func (f ffAdapter) Update(k []byte, v uint64) error { return f.t.Insert(k, v) }
func (f ffAdapter) Lookup(k []byte) (uint64, bool)  { return f.t.Lookup(k) }
func (f ffAdapter) Delete(k []byte) (bool, error)   { return f.t.Delete(k) }
func (f ffAdapter) Recover() error                  { f.t.Recover(); return nil }
func (f ffAdapter) Len() int                        { return f.t.Len() }
func (f ffAdapter) Scan(s []byte, c int, fn func([]byte, uint64) bool) int {
	return f.t.Scan(s, c, fn)
}

type ccehAdapter struct{ t *cceh.Index }

func (c ccehAdapter) Insert(k, v uint64) error       { return c.t.Insert(k, v) }
func (c ccehAdapter) Update(k, v uint64) error       { return c.t.Insert(k, v) }
func (c ccehAdapter) Lookup(k uint64) (uint64, bool) { return c.t.Lookup(k) }
func (c ccehAdapter) Delete(k uint64) (bool, error)  { return c.t.Delete(k) }
func (c ccehAdapter) Recover() error                 { return c.t.Recover() }
func (c ccehAdapter) Len() int                       { return c.t.Len() }
