// Command durability runs the §5 durability test in isolation: it loads
// each index with traced allocations/stores/flushes (the shadow-tracker
// analogue of the paper's PIN tracing) and verifies that every dirtied
// cache line is written back and fenced by the time each operation
// returns. The Faithful modes reproduce the §7.5 finding that FAST & FAIR
// and CCEH fail to persist the initial node allocation.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cceh"
	"repro/internal/core"
	"repro/internal/fastfair"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func main() {
	n := flag.Int("ops", 5000, "traced insert operations per index")
	flag.Parse()

	fmt.Printf("=== §5 durability test: %d traced inserts per index ===\n\n", *n)
	for _, name := range []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree", "FAST & FAIR", "WOART"} {
		name := name
		rep := harness.DurabilityOrdered(name, func(h *pmem.Heap) core.OrderedIndex {
			idx, err := core.NewOrdered(name, h, keys.YCSBString)
			if err != nil {
				panic(err)
			}
			return idx
		}, keys.YCSBString, *n)
		fmt.Println(rep.String())
	}
	for _, name := range []string{"P-CLHT", "CCEH", "Level Hashing"} {
		name := name
		rep := harness.DurabilityHash(name, func(h *pmem.Heap) core.HashIndex {
			idx, err := core.NewHash(name, h)
			if err != nil {
				panic(err)
			}
			return idx
		}, *n)
		fmt.Println(rep.String())
	}

	fmt.Println("\nFaithful modes (FAIL expected — the §7.5 unpersisted-allocation finding):")
	rep := harness.DurabilityOrdered("FF-faithful", func(h *pmem.Heap) core.OrderedIndex {
		return ffAdapter{fastfair.NewWithMode(h, keys.RandInt, fastfair.Faithful)}
	}, keys.RandInt, *n)
	fmt.Println(rep.String())
	rep2 := harness.DurabilityHash("CCEH-faithful", func(h *pmem.Heap) core.HashIndex {
		return ccehAdapter{cceh.NewWithMode(h, cceh.Faithful)}
	}, *n)
	fmt.Println(rep2.String())
}

type ffAdapter struct{ t *fastfair.Tree }

func (f ffAdapter) Insert(k []byte, v uint64) error { return f.t.Insert(k, v) }
func (f ffAdapter) Lookup(k []byte) (uint64, bool)  { return f.t.Lookup(k) }
func (f ffAdapter) Delete(k []byte) (bool, error)   { return f.t.Delete(k) }
func (f ffAdapter) Recover() error                  { f.t.Recover(); return nil }
func (f ffAdapter) Len() int                        { return f.t.Len() }
func (f ffAdapter) Scan(s []byte, c int, fn func([]byte, uint64) bool) int {
	return f.t.Scan(s, c, fn)
}

type ccehAdapter struct{ t *cceh.Index }

func (c ccehAdapter) Insert(k, v uint64) error       { return c.t.Insert(k, v) }
func (c ccehAdapter) Lookup(k uint64) (uint64, bool) { return c.t.Lookup(k) }
func (c ccehAdapter) Delete(k uint64) (bool, error)  { return c.t.Delete(k) }
func (c ccehAdapter) Recover() error                 { return c.t.Recover() }
func (c ccehAdapter) Len() int                       { return c.t.Len() }
